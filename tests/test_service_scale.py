"""Scale-out behaviour of the daemon: fairness, batching, races, filters.

Covers the PR 9 serving-stack additions:

* **weighted fair scheduling** — deterministic stride order over
  per-tenant queues, event-driven (blocking) worker wake-ups and the
  shutdown sentinel;
* **token-bucket rate limits** — the typed ``rate_limited`` rejection
  (HTTP 429) charged per tenant before any queue slot is consumed;
* **batching** — identical specs coalesce into one engine dispatch whose
  result every member shares, with complete journal histories;
* **concurrent-submit races** — N threads hammering intake at
  ``queue_limit`` get exactly the right mix of acceptances and typed
  ``queue_full`` rejections, with no duplicate or lost journal records;
* **journal group commit** — ``sync=False`` appends stay ordered and
  become durable on ``sync()``; concurrent durable appends coalesce
  safely;
* **``GET /v1/jobs`` filters** — ``state=`` / ``kind=`` / ``tenant=`` /
  ``limit=`` narrowing, server-side, with typed 400s for junk.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.exceptions import JobRejectedError, ServiceError
from repro.service import (
    AuditJob,
    AuditService,
    JobJournal,
    JobState,
    ServiceConfig,
    TenantScheduler,
    TokenBucket,
)
from repro.service.http import REJECTION_STATUS, dispatch


def _job(job_id: str, **overrides) -> AuditJob:
    spec = {"id": job_id, "scenario": "figure1", "algorithm": "balanced"}
    spec.update(overrides)
    return AuditJob(**spec)


class TestTenantScheduler:
    def test_weighted_stride_serves_two_to_one(self):
        scheduler = TenantScheduler({"a": 2.0, "b": 1.0})
        for i in range(6):
            scheduler.put("a", 0, f"a{i}")
        for i in range(3):
            scheduler.put("b", 0, f"b{i}")
        order = [scheduler.get(timeout=0.1) for _ in range(9)]
        assert sorted(order) == sorted(f"a{i}" for i in range(6)) + sorted(
            f"b{i}" for i in range(3)
        )
        # Stride scheduling is deterministic: weight-2 'a' is served twice
        # for every 'b', interleaved, never back-loaded.
        assert [x[0] for x in order] == list("abaabaaba")

    def test_within_tenant_priority_then_fifo(self):
        scheduler = TenantScheduler()
        scheduler.put("t", 5, "low")
        scheduler.put("t", 0, "high1")
        scheduler.put("t", 0, "high2")
        assert [scheduler.get(timeout=0.1) for _ in range(3)] == [
            "high1",
            "high2",
            "low",
        ]

    def test_new_tenant_joins_at_current_pass(self):
        scheduler = TenantScheduler()
        for i in range(50):
            scheduler.put("old", 0, f"old{i}")
        for _ in range(50):
            scheduler.get(timeout=0.1)
        scheduler.put("old", 0, "old-next")
        scheduler.put("new", 0, "new-first")
        # 'new' must not owe 50 strides of debt, nor may 'old' be starved.
        first_two = {scheduler.get(timeout=0.1), scheduler.get(timeout=0.1)}
        assert first_two == {"old-next", "new-first"}

    def test_blocking_get_wakes_on_put(self):
        scheduler = TenantScheduler()
        got = []
        worker = threading.Thread(target=lambda: got.append(scheduler.get()))
        worker.start()
        scheduler.put("t", 0, "j1")
        worker.join(timeout=5)
        assert not worker.is_alive()
        assert got == ["j1"]

    def test_close_releases_blocked_getters_with_sentinel(self):
        scheduler = TenantScheduler()
        got = []
        workers = [
            threading.Thread(target=lambda: got.append(scheduler.get()))
            for _ in range(3)
        ]
        for worker in workers:
            worker.start()
        scheduler.close()
        for worker in workers:
            worker.join(timeout=5)
            assert not worker.is_alive()
        assert got == [None, None, None]

    def test_empty_timeout_returns_none(self):
        assert TenantScheduler().get(timeout=0.01) is None

    def test_take_matching_respects_limit_and_predicate(self):
        scheduler = TenantScheduler()
        for i in range(6):
            scheduler.put("t", 0, f"j{i}")
        taken = scheduler.take_matching(lambda j: j != "j2", 3)
        assert taken == ["j0", "j1", "j3"]
        left = [scheduler.get(timeout=0.1) for _ in range(3)]
        assert left == ["j2", "j4", "j5"]
        assert len(scheduler) == 0

    def test_invalid_weight_rejected(self):
        with pytest.raises(ServiceError, match="weight"):
            TenantScheduler({"t": 0.0})


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2, clock=lambda: now[0])
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()  # burst exhausted
        now[0] = 0.5  # 0.5 s at 2/s refills exactly one token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_tokens_cap_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=100.0, burst=2, clock=lambda: now[0])
        now[0] = 60.0  # long idle must not bank more than `burst`
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_validation(self):
        with pytest.raises(ServiceError, match="rate"):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ServiceError, match="burst"):
            TokenBucket(rate=1.0, burst=0)


class TestRateLimitedIntake:
    def test_third_burst_submission_is_rate_limited(self, tmp_path):
        config = ServiceConfig(
            tmp_path, queue_limit=16, workers=1, port=None,
            rate_limit=2.0, rate_limit_burst=2,
        )
        with AuditService(config) as svc:
            svc.submit(_job("r1"))
            svc.submit(_job("r2"))
            with pytest.raises(JobRejectedError) as excinfo:
                svc.submit(_job("r3"))
            assert excinfo.value.reason == "rate_limited"
            assert (
                svc.metrics.as_dict()["counters"]["service.rejected.rate_limited"]
                == 1
            )
            # An over-limit tenant consumed no queue slot and other
            # tenants are unaffected: their buckets are independent.
            svc.submit(_job("other1", tenant="other"))
            assert svc.drain(timeout=60)

    def test_rate_limited_maps_to_429(self):
        assert REJECTION_STATUS["rate_limited"] == 429


class TestBatching:
    def test_identical_specs_share_one_dispatch(self, tmp_path):
        config = ServiceConfig(
            tmp_path, queue_limit=16, workers=1, port=None, batch_max=8
        )
        svc = AuditService(config)
        gate = threading.Event()
        calls = []
        original = svc._execute

        def gated(job):
            gate.wait(timeout=60)
            calls.append(job.id)
            return original(job)

        svc._execute = gated
        with svc:
            svc.submit(_job("blocker", seed=99))
            batch_ids = [f"same{i}" for i in range(6)]
            for job_id in batch_ids:
                # Distinct ids/priorities/tenants, identical spec otherwise.
                svc.submit(_job(job_id, tenant=f"t{job_id[-1]}"))
            svc.submit(_job("odd-one", seed=7))
            gate.set()
            assert svc.drain(timeout=120)
            counters = svc.metrics.as_dict()["counters"]
            # blocker + one shared dispatch for all six + odd-one = 3 runs.
            assert len(calls) == 3
            assert counters["service.batches"] == 1
            assert counters["service.batched_jobs"] == 6
            results = {
                job_id: svc.record(job_id).result for job_id in batch_ids
            }
            assert all(svc.record(j).state is JobState.DONE for j in batch_ids)
            assert len({json.dumps(r, sort_keys=True) for r in results.values()}) == 1
            assert svc.record("blocker").state is JobState.DONE
            assert svc.record("odd-one").state is JobState.DONE
        # Every member of the batch has a complete journaled history.
        replayed = JobJournal(tmp_path / "journal.jsonl").replay()
        for job_id in batch_ids + ["blocker", "odd-one"]:
            assert replayed[job_id].state is JobState.DONE
            assert replayed[job_id].attempt == 1

    def test_deadline_jobs_never_batch(self, tmp_path):
        config = ServiceConfig(tmp_path, queue_limit=16, workers=1, port=None,
                               batch_max=8)
        svc = AuditService(config)
        with svc:
            assert not svc._batchable(_job("d1", deadline_seconds=30.0))
            assert not svc._batchable(_job("m1", kind="mitigate"))
            assert svc._batchable(_job("a1"))

    def test_batch_key_ignores_identity_fields_only(self):
        base = _job("x", tenant="a", priority=3)
        twin = _job("y", tenant="b", priority=0)
        other = _job("z", seed=1)
        key = AuditService._batch_key
        svc = object.__new__(AuditService)  # _batch_key needs no state
        assert key(svc, base) == key(svc, twin)
        assert key(svc, base) != key(svc, other)


class TestConcurrentSubmitRace:
    def test_exact_mix_of_accepts_and_queue_full(self, tmp_path):
        queue_limit = 4
        extra = 8
        config = ServiceConfig(
            tmp_path, queue_limit=queue_limit, workers=1, port=None
        )
        svc = AuditService(config)
        gate = threading.Event()
        original = svc._execute

        def gated(job):
            gate.wait(timeout=60)
            return original(job)

        svc._execute = gated
        with svc:
            # Park the single worker on a blocker so the queue level is
            # exactly controlled by our submissions.
            svc.submit(_job("blocker"))
            deadline = 60.0
            import time as _time

            start = _time.monotonic()
            while svc.record("blocker").state is not JobState.RUNNING:
                assert _time.monotonic() - start < deadline
                _time.sleep(0.001)

            barrier = threading.Barrier(queue_limit + extra)
            outcomes: "list[tuple[str, str]]" = []
            lock = threading.Lock()

            def submit(job_id: str) -> None:
                barrier.wait(timeout=30)
                try:
                    svc.submit(_job(job_id))
                except JobRejectedError as exc:
                    with lock:
                        outcomes.append((job_id, exc.reason))
                else:
                    with lock:
                        outcomes.append((job_id, "accepted"))

            threads = [
                threading.Thread(target=submit, args=(f"c{i}",))
                for i in range(queue_limit + extra)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive()

            accepted = [j for j, outcome in outcomes if outcome == "accepted"]
            rejected = [(j, r) for j, r in outcomes if r != "accepted"]
            assert len(accepted) == queue_limit  # exactly the queue capacity
            assert len(rejected) == extra
            assert {reason for _, reason in rejected} == {"queue_full"}
            gate.set()
            assert svc.drain(timeout=120)
        # Journal invariant: one submit record per accepted job (plus the
        # blocker), none duplicated, none lost, all DONE.
        journal = JobJournal(tmp_path / "journal.jsonl")
        submits = [
            event["job"]["id"]
            for event in journal.read_records()[1:]
            if event["type"] == "submit"
        ]
        assert sorted(submits) == sorted(accepted + ["blocker"])
        assert len(set(submits)) == len(submits)
        replayed = journal.replay()
        assert all(replayed[j].state is JobState.DONE for j in submits)


class TestJournalGroupCommit:
    def test_unsynced_appends_become_durable_on_sync(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            for i in range(5):
                journal.append(
                    {"type": "mpop_create", "ts": float(i),
                     "spec": {"id": f"m{i}"}},
                    sync=False,
                )
            journal.sync()
        records = JobJournal(path).read_records()
        assert [r.get("spec", {}).get("id") for r in records[1:]] == [
            f"m{i}" for i in range(5)
        ]

    def test_concurrent_durable_appends_all_land(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            def hammer(base: int) -> None:
                for i in range(25):
                    journal.append(
                        {"type": "mpop_create", "ts": 0.0,
                         "spec": {"id": f"t{base}-{i}"}},
                    )

            threads = [
                threading.Thread(target=hammer, args=(t,)) for t in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive()
        records = JobJournal(path).read_records()[1:]
        ids = [r["spec"]["id"] for r in records]
        assert len(ids) == 100
        assert len(set(ids)) == 100  # no torn/interleaved lines

    def test_close_syncs_pending_writes(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path).open()
        journal.append(
            {"type": "mpop_create", "ts": 0.0, "spec": {"id": "m"}}, sync=False
        )
        journal.close()
        assert len(JobJournal(path).read_records()) == 2


class TestJobListingFilters:
    @pytest.fixture()
    def loaded_service(self, tmp_path):
        svc = AuditService(
            ServiceConfig(tmp_path, queue_limit=16, workers=1, port=None)
        )
        with svc:
            svc.submit(_job("a1", tenant="acme"))
            svc.submit(_job("a2", tenant="acme"))
            svc.submit(_job("b1", tenant="bravo"))
            assert svc.drain(timeout=120)
            yield svc

    def test_state_kind_tenant_and_limit(self, loaded_service):
        svc = loaded_service
        assert len(svc.jobs_snapshot(state="DONE")) == 3
        assert svc.jobs_snapshot(state="PENDING") == []
        assert len(svc.jobs_snapshot(kind="audit")) == 3
        assert svc.jobs_snapshot(kind="mitigate") == []
        assert [j["id"] for j in svc.jobs_snapshot(tenant="acme")] == ["a1", "a2"]
        # limit keeps the most recently submitted matches.
        assert [j["id"] for j in svc.jobs_snapshot(limit=2)] == ["a2", "b1"]

    def test_unknown_filter_values_raise(self, loaded_service):
        with pytest.raises(ServiceError, match="state"):
            loaded_service.jobs_snapshot(state="RUNNING_FAST")
        with pytest.raises(ServiceError, match="kind"):
            loaded_service.jobs_snapshot(kind="nope")
        with pytest.raises(ServiceError, match="limit"):
            loaded_service.jobs_snapshot(limit=0)

    def test_http_dispatch_filters_and_envelope(self, loaded_service):
        status, payload, api_v1 = dispatch(
            loaded_service, "GET", "/v1/jobs?state=DONE&tenant=acme&limit=1", b""
        )
        assert (status, api_v1) == (200, True)
        assert [j["id"] for j in payload["jobs"]] == ["a2"]
        status, payload, _ = dispatch(
            loaded_service, "GET", "/v1/jobs?state=BOGUS", b""
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid_spec"
        status, payload, _ = dispatch(
            loaded_service, "GET", "/v1/jobs?frobnicate=1", b""
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid_spec"


class TestTenantField:
    def test_default_and_roundtrip(self):
        job = _job("t1")
        assert job.tenant == "default"
        assert AuditJob.from_dict(job.to_dict()).tenant == "default"

    def test_absent_in_old_journal_payloads(self):
        payload = _job("t2").to_dict()
        del payload["tenant"]  # pre-PR-9 journal record
        assert AuditJob.from_dict(payload).tenant == "default"

    def test_invalid_tenant_rejected(self):
        with pytest.raises(ServiceError, match="tenant"):
            _job("t3", tenant="no spaces allowed")


class TestServiceConfigKnobs:
    def test_validation(self, tmp_path):
        with pytest.raises(ServiceError, match="rate_limit"):
            ServiceConfig(tmp_path, rate_limit=0.0)
        with pytest.raises(ServiceError, match="batch_max"):
            ServiceConfig(tmp_path, batch_max=0)
        with pytest.raises(ServiceError, match="shard_workers"):
            ServiceConfig(tmp_path, shard_workers=0)
        with pytest.raises(ServiceError, match="weight"):
            ServiceConfig(tmp_path, tenant_weights={"t": -1})

    def test_burst_defaults_to_ceil_of_rate(self, tmp_path):
        assert ServiceConfig(tmp_path, rate_limit=2.5).rate_limit_burst == 3
        assert ServiceConfig(tmp_path, rate_limit=0.5).rate_limit_burst == 1
        assert ServiceConfig(tmp_path).rate_limit_burst is None


class TestKeepAlive:
    def test_one_connection_serves_many_requests(self, tmp_path):
        import http.client

        svc = AuditService(
            ServiceConfig(tmp_path, queue_limit=4, workers=1, port=0)
        ).start()
        try:
            host, port = svc.address
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                for _ in range(3):  # same TCP connection, three round-trips
                    conn.request("GET", "/v1/healthz")
                    response = conn.getresponse()
                    body = json.loads(response.read())
                    assert response.status == 200
                    assert body["status"] == "ok"
            finally:
                conn.close()
        finally:
            svc.stop()


class TestSchedulerCoalescing:
    def test_get_batch_pulls_same_key_followers_in_order(self):
        scheduler = TenantScheduler()
        scheduler.put("a", 0, "a1", key="K")
        scheduler.put("b", 0, "b1", key="K")
        scheduler.put("a", 0, "a2", key="OTHER")
        scheduler.put("c", 0, "c1", key="K")
        batch = scheduler.get_batch(8, timeout=0.1)
        # Leader is the fair-share pick; followers come out of the key
        # index in submission order, across tenants.
        assert batch == ["a1", "b1", "c1"]
        assert len(scheduler) == 1
        assert scheduler.get(timeout=0.1) == "a2"

    def test_followers_leave_ghosts_that_get_skips(self):
        scheduler = TenantScheduler()
        for i in range(3):
            scheduler.put("t", 0, f"j{i}", key="K")
        assert scheduler.get_batch(2, timeout=0.1) == ["j0", "j1"]
        assert len(scheduler) == 1
        # j1's heap entry is a ghost now; get() must serve j2, not j1.
        assert scheduler.get(timeout=0.1) == "j2"
        assert scheduler.get(timeout=0.05) is None

    def test_retried_job_requeues_behind_its_own_ghost(self):
        scheduler = TenantScheduler()
        scheduler.put("t", 0, "a", key="K")
        scheduler.put("t", 0, "b", key="K")
        assert scheduler.get_batch(2, timeout=0.1) == ["a", "b"]
        # The batch failed and "b" retries: its fresh entry sits behind
        # the ghost left by the follower take, and must still be served.
        scheduler.put("t", 0, "b", key="K")
        assert scheduler.get(timeout=0.1) == "b"
        assert scheduler.get(timeout=0.05) is None

    def test_batch_max_one_and_keyless_jobs_never_coalesce(self):
        scheduler = TenantScheduler()
        scheduler.put("t", 0, "k1", key="K")
        scheduler.put("t", 0, "k2", key="K")
        assert scheduler.get_batch(1, timeout=0.1) == ["k1"]
        assert scheduler.get_batch(8, timeout=0.1) == ["k2"]
        scheduler.put("t", 0, "plain1")
        scheduler.put("t", 0, "plain2")
        assert scheduler.get_batch(8, timeout=0.1) == ["plain1"]

    def test_take_matching_skips_ghosts(self):
        scheduler = TenantScheduler()
        for i in range(3):
            scheduler.put("t", 0, f"j{i}", key="K")
        assert scheduler.get_batch(2, timeout=0.1) == ["j0", "j1"]
        assert scheduler.take_matching(lambda _: True, 5) == ["j2"]
        assert len(scheduler) == 0

    def test_batch_followers_charge_their_tenants_strides(self):
        # Weight 0.5 makes one 'a' dispatch cost 2.0 strides — the same
        # as leader + follower for weight-1 'b'.
        scheduler = TenantScheduler({"a": 0.5, "b": 1.0})
        scheduler.put("b", 0, "b1", key="K")
        scheduler.put("b", 0, "b2", key="K")
        scheduler.put("b", 0, "b3")
        scheduler.put("a", 0, "a1")
        scheduler.put("a", 0, "a2")
        assert scheduler.get(timeout=0.1) == "a1"  # (0.0, a) ties ahead of b
        assert scheduler.get_batch(8, timeout=0.1) == ["b1", "b2"]
        # The follower charged b's stride to 2.0, tying it with a — so the
        # name tie-break serves a2 next.  Had the follower ridden free,
        # b3 (at 1.0) would have gone first.
        assert scheduler.get(timeout=0.1) == "a2"
        assert scheduler.get(timeout=0.1) == "b3"


class TestBulkSubmit:
    def test_submit_many_mixes_accepts_and_typed_rejections(self, tmp_path):
        config = ServiceConfig(tmp_path, queue_limit=3, workers=1, port=None)
        svc = AuditService(config)
        gate = threading.Event()
        original = svc._execute

        def gated(job):
            gate.wait(timeout=60)
            return original(job)

        svc._execute = gated
        with svc:
            # Park the single worker on a blocker so the queue depth seen
            # by the bulk capacity checks is deterministic.
            svc.submit(_job("blocker", seed=99))
            for _ in range(200):
                if svc.record("blocker").state is JobState.RUNNING:
                    break
                threading.Event().wait(0.01)
            assert svc.record("blocker").state is JobState.RUNNING
            specs = [
                _job("ok1").to_dict(),
                {"id": "bad", "scenario": "no-such-scenario"},
                _job("ok2").to_dict(),
                _job("ok1").to_dict(),  # duplicate of the first
                _job("ok3").to_dict(),
                _job("overflow").to_dict(),  # fourth slot of a 3-job queue
            ]
            results = svc.submit_many(specs)
            assert [type(r).__name__ for r in results] == [
                "JobRecord", "JobRejectedError", "JobRecord",
                "JobRejectedError", "JobRecord", "JobRejectedError",
            ]
            assert results[1].reason == "invalid_spec"
            assert results[3].reason == "duplicate_id"
            assert results[5].reason == "queue_full"
            gate.set()
            assert svc.drain(timeout=120)
            for job_id in ("blocker", "ok1", "ok2", "ok3"):
                assert svc.record(job_id).state is JobState.DONE
        # Only the accepted specs ever reached the journal.
        replayed = JobJournal(tmp_path / "journal.jsonl").replay()
        assert sorted(replayed) == ["blocker", "ok1", "ok2", "ok3"]

    def test_batch_route_reports_per_item_outcomes(self, tmp_path):
        config = ServiceConfig(tmp_path, queue_limit=16, workers=1, port=None)
        with AuditService(config) as svc:
            body = json.dumps({
                "jobs": [
                    _job("r1").to_dict(),
                    {"id": "junk", "scenario": "no-such-scenario"},
                    _job("r2").to_dict(),
                ]
            }).encode()
            status, payload, api_v1 = dispatch(svc, "POST", "/v1/jobs/batch", body)
            assert (status, api_v1) == (202, True)
            assert payload["accepted"] == 2
            assert payload["rejected"] == 1
            assert [sorted(item) for item in payload["results"]] == [
                ["job"], ["error"], ["job"],
            ]
            assert payload["results"][1]["error"]["code"] == "invalid_spec"
            assert payload["results"][0]["job"]["id"] == "r1"
            assert svc.drain(timeout=120)

    def test_batch_route_rejects_malformed_bodies(self, tmp_path):
        config = ServiceConfig(tmp_path, queue_limit=4, workers=1, port=None)
        with AuditService(config) as svc:
            for body in (b"{}", b'{"jobs": []}', b'{"jobs": "nope"}', b"[1]"):
                status, payload, _ = dispatch(svc, "POST", "/v1/jobs/batch", body)
                assert status == 400
                assert payload["error"]["code"] == "invalid_spec"
            assert svc.drain(timeout=60)
