"""Unit tests for scenarios, the experiment runner and simulation config."""

from __future__ import annotations

import pytest

from repro.simulation.config import (
    LARGE_WORKER_COUNT,
    SMALL_WORKER_COUNT,
    PaperConfig,
)
from repro.simulation.runner import run_scenario
from repro.simulation.scenarios import (
    figure1_scenario,
    table1_scenario,
    table3_scenario,
)


class TestPaperConfig:
    def test_paper_sizes(self) -> None:
        assert SMALL_WORKER_COUNT == 500
        assert LARGE_WORKER_COUNT == 7300

    def test_defaults(self) -> None:
        config = PaperConfig()
        assert config.n_workers == 500
        assert config.histogram_bins == 10

    def test_schema_uses_bucket_settings(self) -> None:
        config = PaperConfig(year_of_birth_buckets=4)
        assert config.schema().protected_attribute("year_of_birth").cardinality == 4


class TestScenarios:
    def test_figure1_scenario(self) -> None:
        scenario = figure1_scenario()
        assert scenario.population.size == 12
        assert list(scenario.functions) == ["f"]

    def test_table1_scenario_uses_paper_defaults(self) -> None:
        scenario = table1_scenario()
        assert scenario.population.size == 500
        assert sorted(scenario.functions) == ["f1", "f2", "f3", "f4", "f5"]

    def test_table3_scenario_uses_biased_functions(self) -> None:
        scenario = table3_scenario(PaperConfig(n_workers=100))
        assert sorted(scenario.functions) == ["f6", "f7", "f8", "f9"]

    def test_config_override_shrinks_population(self) -> None:
        scenario = table1_scenario(PaperConfig(n_workers=64, seed=1))
        assert scenario.population.size == 64


class TestRunScenario:
    @pytest.fixture(scope="class")
    def small_result(self):
        scenario = table3_scenario(PaperConfig(n_workers=150, seed=5))
        return run_scenario(
            scenario, algorithms=("balanced", "unbalanced", "r-balanced"), seed=0
        )

    def test_one_row_per_cell(self, small_result) -> None:
        assert len(small_result.rows) == 3 * 4  # 3 algorithms x 4 functions

    def test_cell_lookup(self, small_result) -> None:
        row = small_result.cell("balanced", "f6")
        assert row.algorithm == "balanced"
        assert row.function == "f6"
        assert row.unfairness > 0.0
        assert row.runtime_seconds >= 0.0
        assert row.n_partitions >= 2

    def test_missing_cell_raises(self, small_result) -> None:
        with pytest.raises(KeyError):
            small_result.cell("balanced", "f1")

    def test_algorithm_and_function_enumeration(self, small_result) -> None:
        assert small_result.algorithms() == ("balanced", "unbalanced", "r-balanced")
        assert small_result.functions() == ("f6", "f7", "f8", "f9")

    def test_runs_are_reproducible(self) -> None:
        scenario = table3_scenario(PaperConfig(n_workers=120, seed=6))
        first = run_scenario(scenario, algorithms=("r-balanced",), seed=11)
        second = run_scenario(scenario, algorithms=("r-balanced",), seed=11)
        for row_a, row_b in zip(first.rows, second.rows):
            assert row_a.unfairness == row_b.unfairness
            assert row_a.n_partitions == row_b.n_partitions

    def test_different_run_seeds_change_random_algorithms(self) -> None:
        scenario = table3_scenario(PaperConfig(n_workers=120, seed=6))
        first = run_scenario(scenario, algorithms=("r-balanced",), seed=1)
        second = run_scenario(scenario, algorithms=("r-balanced",), seed=2)
        assert any(
            a.attributes_used != b.attributes_used
            for a, b in zip(first.rows, second.rows)
        )

    def test_algorithm_options_forwarded(self) -> None:
        scenario = figure1_scenario()
        result = run_scenario(
            scenario,
            algorithms=("exhaustive",),
            algorithm_options={"exhaustive": {"budget": 50_000}},
        )
        assert result.rows[0].algorithm == "exhaustive"

    def test_gender_bias_found_in_f6_row(self, small_result) -> None:
        row = small_result.cell("balanced", "f6")
        assert row.attributes_used == ("gender",)
        assert row.unfairness == pytest.approx(0.8, abs=0.05)
