"""Unit tests for worker schemas."""

from __future__ import annotations

import pytest

from repro.core.attributes import (
    CategoricalAttribute,
    IntegerAttribute,
    ObservedAttribute,
)
from repro.core.schema import WorkerSchema
from repro.exceptions import SchemaError
from repro.simulation.config import paper_schema


class TestWorkerSchema:
    def test_names_follow_declaration_order(self, small_schema: WorkerSchema) -> None:
        assert small_schema.protected_names == ("gender", "country", "age")
        assert small_schema.observed_names == ("skill",)

    def test_protected_attribute_lookup(self, small_schema: WorkerSchema) -> None:
        attr = small_schema.protected_attribute("country")
        assert isinstance(attr, CategoricalAttribute)
        assert attr.values == ("America", "India", "Other")

    def test_observed_attribute_lookup(self, small_schema: WorkerSchema) -> None:
        assert small_schema.observed_attribute("skill").high == 1.0

    def test_unknown_protected_lookup_raises(self, small_schema: WorkerSchema) -> None:
        with pytest.raises(SchemaError, match="no protected attribute"):
            small_schema.protected_attribute("skill")

    def test_unknown_observed_lookup_raises(self, small_schema: WorkerSchema) -> None:
        with pytest.raises(SchemaError, match="no observed attribute"):
            small_schema.observed_attribute("gender")

    def test_requires_protected_attributes(self) -> None:
        with pytest.raises(SchemaError, match="at least one protected"):
            WorkerSchema(protected=(), observed=(ObservedAttribute("skill"),))

    def test_requires_observed_attributes(self) -> None:
        with pytest.raises(SchemaError, match="at least one observed"):
            WorkerSchema(
                protected=(CategoricalAttribute("gender", ("M", "F")),), observed=()
            )

    def test_rejects_duplicate_names_across_families(self) -> None:
        with pytest.raises(SchemaError, match="duplicate attribute names"):
            WorkerSchema(
                protected=(CategoricalAttribute("x", ("a", "b")),),
                observed=(ObservedAttribute("x"),),
            )

    def test_search_space_size_multiplies_cardinalities(
        self, small_schema: WorkerSchema
    ) -> None:
        assert small_schema.search_space_size() == 2 * 3 * 5


class TestPaperSchema:
    def test_six_protected_two_observed(self) -> None:
        schema = paper_schema()
        assert len(schema.protected) == 6
        assert len(schema.observed) == 2

    def test_paper_domains(self) -> None:
        schema = paper_schema()
        gender = schema.protected_attribute("gender")
        assert isinstance(gender, CategoricalAttribute)
        assert gender.values == ("Male", "Female")
        ethnicity = schema.protected_attribute("ethnicity")
        assert isinstance(ethnicity, CategoricalAttribute)
        assert ethnicity.values == ("White", "African-American", "Indian", "Other")
        year_of_birth = schema.protected_attribute("year_of_birth")
        assert isinstance(year_of_birth, IntegerAttribute)
        assert (year_of_birth.low, year_of_birth.high) == (1950, 2009)
        experience = schema.protected_attribute("years_experience")
        assert isinstance(experience, IntegerAttribute)
        assert (experience.low, experience.high) == (0, 30)
        for name in ("language_test", "approval_rate"):
            observed = schema.observed_attribute(name)
            assert (observed.low, observed.high) == (25.0, 100.0)

    def test_max_five_values_per_attribute_by_default(self) -> None:
        # The paper's exhaustive run used "a maximum of 5 values" per attribute.
        assert all(attr.cardinality <= 5 for attr in paper_schema().protected)

    def test_bucket_counts_are_configurable(self) -> None:
        schema = paper_schema(year_of_birth_buckets=3, experience_buckets=2)
        assert schema.protected_attribute("year_of_birth").cardinality == 3
        assert schema.protected_attribute("years_experience").cardinality == 2
