"""Unit tests for linear scoring functions (paper f1..f5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.population import Population
from repro.exceptions import ScoringError
from repro.marketplace.scoring import (
    PAPER_ALPHAS,
    LinearScoringFunction,
    ScoringFunction,
    paper_functions,
)


class TestLinearScoringFunction:
    def test_scores_are_weighted_normalised_sums(
        self, paper_population_small: Population
    ) -> None:
        function = LinearScoringFunction(
            "f", {"language_test": 0.3, "approval_rate": 0.7}
        )
        scores = function(paper_population_small)
        expected = 0.3 * paper_population_small.observed_normalized(
            "language_test"
        ) + 0.7 * paper_population_small.observed_normalized("approval_rate")
        np.testing.assert_allclose(scores, expected)

    def test_scores_stay_in_unit_interval(
        self, paper_population_small: Population
    ) -> None:
        for function in paper_functions().values():
            scores = function(paper_population_small)
            assert scores.min() >= 0.0 and scores.max() <= 1.0

    def test_zero_weight_attribute_is_ignored(
        self, paper_population_small: Population
    ) -> None:
        only_b1 = LinearScoringFunction("f", {"language_test": 1.0, "approval_rate": 0.0})
        np.testing.assert_allclose(
            only_b1(paper_population_small),
            paper_population_small.observed_normalized("language_test"),
        )

    def test_negative_weight_rejected(self) -> None:
        with pytest.raises(ScoringError, match="negative"):
            LinearScoringFunction("f", {"x": -0.1})

    def test_weights_above_one_rejected(self) -> None:
        with pytest.raises(ScoringError, match="<= 1"):
            LinearScoringFunction("f", {"x": 0.7, "y": 0.7})

    def test_empty_weights_rejected(self) -> None:
        with pytest.raises(ScoringError, match="at least one weight"):
            LinearScoringFunction("f", {})

    def test_empty_name_rejected(self) -> None:
        with pytest.raises(ScoringError, match="non-empty"):
            LinearScoringFunction("", {"x": 1.0})

    def test_unknown_attribute_fails_at_scoring_time(
        self, small_population: Population
    ) -> None:
        function = LinearScoringFunction("f", {"nonexistent": 1.0})
        with pytest.raises(Exception, match="no observed attribute"):
            function(small_population)

    def test_wrapper_validates_range(self, small_population: Population) -> None:
        class Broken(ScoringFunction):
            def scores(self, population: Population) -> np.ndarray:
                return np.full(population.size, 1.5)

        with pytest.raises(ScoringError, match="outside"):
            Broken("broken")(small_population)

    def test_wrapper_validates_shape(self, small_population: Population) -> None:
        class Broken(ScoringFunction):
            def scores(self, population: Population) -> np.ndarray:
                return np.array([0.5])

        with pytest.raises(ScoringError, match="shape"):
            Broken("broken")(small_population)

    def test_repr(self) -> None:
        assert "f1" in repr(LinearScoringFunction("f1", {"x": 1.0}))


class TestPaperFunctions:
    def test_five_functions(self) -> None:
        functions = paper_functions()
        assert sorted(functions) == ["f1", "f2", "f3", "f4", "f5"]

    def test_alpha_assignment(self) -> None:
        # f4 relies only on LanguageTest (alpha=1), f5 only on ApprovalRate.
        assert PAPER_ALPHAS["f4"] == 1.0
        assert PAPER_ALPHAS["f5"] == 0.0
        functions = paper_functions()
        assert functions["f4"].weights == {"language_test": 1.0, "approval_rate": 0.0}
        assert functions["f5"].weights == {"language_test": 0.0, "approval_rate": 1.0}

    def test_weights_are_convex(self) -> None:
        for function in paper_functions().values():
            assert sum(function.weights.values()) == pytest.approx(1.0)

    def test_f4_depends_only_on_language_test(
        self, paper_population_small: Population
    ) -> None:
        np.testing.assert_allclose(
            paper_functions()["f4"](paper_population_small),
            paper_population_small.observed_normalized("language_test"),
        )

    def test_mixtures_have_lower_variance_than_single_attribute(
        self, paper_population_small: Population
    ) -> None:
        # This is the mechanism behind the paper's first observation: with
        # random data, single-attribute functions (f4, f5) are uniform and
        # wide, mixtures are triangular-ish and narrower, so f4/f5 exhibit
        # higher EMD between random subgroups.
        functions = paper_functions()
        mixture_std = functions["f1"](paper_population_small).std()
        single_std = functions["f4"](paper_population_small).std()
        assert mixture_std < single_std
