"""Unit tests for tasks and ranked result lists."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.population import Population
from repro.exceptions import ScoringError
from repro.marketplace.ranking import Ranking, rank_workers
from repro.marketplace.scoring import LinearScoringFunction
from repro.marketplace.tasks import Task, eligible_workers, task_from_weights


class TestTask:
    def test_task_from_weights_builds_linear_scoring(self) -> None:
        task = task_from_weights(
            "t1", "help with HTML/CSS", {"language_test": 0.5, "approval_rate": 0.5}
        )
        assert task.task_id == "t1"
        assert isinstance(task.scoring, LinearScoringFunction)
        assert task.positions == 1

    def test_empty_task_id_rejected(self) -> None:
        with pytest.raises(ScoringError, match="non-empty"):
            Task("", "x", LinearScoringFunction("f", {"skill": 1.0}))

    def test_nonpositive_positions_rejected(self) -> None:
        with pytest.raises(ScoringError, match="positions"):
            Task("t", "x", LinearScoringFunction("f", {"skill": 1.0}), positions=0)

    def test_tags_default_empty(self) -> None:
        task = task_from_weights("t", "x", {"skill": 1.0})
        assert task.tags == ()
        assert task.requirements == {}

    def test_eligible_workers_applies_minimums(
        self, small_population: Population
    ) -> None:
        task = task_from_weights(
            "t", "x", {"skill": 1.0}, requirements={"skill": 0.5}
        )
        mask = eligible_workers(small_population, task)
        skills = small_population.observed_column("skill")
        assert (mask == (skills >= 0.5)).all()

    def test_eligible_workers_no_requirements_matches_everyone(
        self, small_population: Population
    ) -> None:
        task = task_from_weights("t", "x", {"skill": 1.0})
        assert eligible_workers(small_population, task).all()

    def test_eligible_workers_conjunction(
        self, paper_population_small: Population
    ) -> None:
        task = task_from_weights(
            "t",
            "x",
            {"language_test": 1.0},
            requirements={"language_test": 80.0, "approval_rate": 80.0},
        )
        mask = eligible_workers(paper_population_small, task)
        tests = paper_population_small.observed_column("language_test")
        approvals = paper_population_small.observed_column("approval_rate")
        assert (mask == ((tests >= 80.0) & (approvals >= 80.0))).all()


class TestRanking:
    def test_rank_workers_orders_by_score_descending(
        self, small_population: Population
    ) -> None:
        ranking = rank_workers(
            small_population, LinearScoringFunction("f", {"skill": 1.0})
        )
        ranked_scores = ranking.scores_by_rank()
        assert all(a >= b for a, b in zip(ranked_scores, ranked_scores[1:]))

    def test_top_worker_has_highest_skill(self, small_population: Population) -> None:
        ranking = rank_workers(
            small_population, LinearScoringFunction("f", {"skill": 1.0})
        )
        # Worker 10 has skill 0.95, the maximum.
        assert ranking.order[0] == 10

    def test_ties_break_on_worker_index(self, small_population: Population) -> None:
        constant = type(
            "Const",
            (LinearScoringFunction,),
            {"scores": lambda self, population: np.full(population.size, 0.5)},
        )("const", {"skill": 1.0})
        ranking = rank_workers(small_population, constant)
        assert ranking.order.tolist() == list(range(small_population.size))

    def test_top_k(self, small_population: Population) -> None:
        ranking = rank_workers(
            small_population, LinearScoringFunction("f", {"skill": 1.0})
        )
        assert ranking.top_k(3).tolist() == ranking.order[:3].tolist()
        assert ranking.top_k(0).size == 0

    def test_top_k_negative_rejected(self, small_population: Population) -> None:
        ranking = rank_workers(
            small_population, LinearScoringFunction("f", {"skill": 1.0})
        )
        with pytest.raises(ScoringError, match="non-negative"):
            ranking.top_k(-1)

    def test_rank_of(self, small_population: Population) -> None:
        ranking = rank_workers(
            small_population, LinearScoringFunction("f", {"skill": 1.0})
        )
        assert ranking.rank_of(10) == 0
        # Worker 9 has the minimum skill (0.05).
        assert ranking.rank_of(9) == small_population.size - 1

    def test_rank_of_unknown_worker(self, small_population: Population) -> None:
        ranking = rank_workers(
            small_population, LinearScoringFunction("f", {"skill": 1.0})
        )
        with pytest.raises(ScoringError, match="not in this ranking"):
            ranking.rank_of(99)

    def test_size_and_len(self, small_population: Population) -> None:
        ranking = rank_workers(
            small_population, LinearScoringFunction("f", {"skill": 1.0})
        )
        assert ranking.size == len(ranking) == small_population.size

    def test_more_ranked_workers_than_scores_rejected(self) -> None:
        with pytest.raises(ScoringError, match="only"):
            Ranking(order=np.array([0, 1]), scores=np.array([0.5]))

    def test_order_referencing_unknown_worker_rejected(self) -> None:
        with pytest.raises(ScoringError, match="without scores"):
            Ranking(order=np.array([3]), scores=np.array([0.5, 0.6]))

    def test_subset_ranking_allowed(self) -> None:
        ranking = Ranking(order=np.array([1]), scores=np.array([0.5, 0.9, 0.7]))
        assert ranking.size == 1
        assert ranking.rank_of(1) == 0

    def test_eligibility_mask_restricts_ranking(
        self, small_population: Population
    ) -> None:
        eligible = small_population.observed_column("skill") >= 0.5
        ranking = rank_workers(
            small_population, LinearScoringFunction("f", {"skill": 1.0}), eligible
        )
        assert ranking.size == int(eligible.sum())
        assert set(ranking.order.tolist()) == set(np.nonzero(eligible)[0].tolist())
        ranked_scores = ranking.scores_by_rank()
        assert all(a >= b for a, b in zip(ranked_scores, ranked_scores[1:]))

    def test_eligibility_mask_shape_checked(
        self, small_population: Population
    ) -> None:
        with pytest.raises(ScoringError, match="mask has shape"):
            rank_workers(
                small_population,
                LinearScoringFunction("f", {"skill": 1.0}),
                np.array([True]),
            )

    def test_ranking_is_reproducible(self, paper_population_small: Population) -> None:
        function = LinearScoringFunction(
            "f", {"language_test": 0.5, "approval_rate": 0.5}
        )
        first = rank_workers(paper_population_small, function)
        second = rank_workers(paper_population_small, function)
        np.testing.assert_array_equal(first.order, second.order)
