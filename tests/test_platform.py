"""Unit tests for the end-to-end marketplace simulation."""

from __future__ import annotations

import pytest

from repro.core.population import Population
from repro.exceptions import ScoringError
from repro.marketplace.biased import paper_biased_functions
from repro.marketplace.platform import Marketplace
from repro.marketplace.tasks import Task, task_from_weights


class TestPostTask:
    def test_post_task_hires_top_positions(
        self, paper_population_small: Population
    ) -> None:
        marketplace = Marketplace(paper_population_small)
        task = task_from_weights(
            "t1", "micro-gig", {"language_test": 0.5, "approval_rate": 0.5}, positions=3
        )
        record = marketplace.post_task(task)
        assert record.n_hired == 3
        assert record.hired.tolist() == record.ranking.top_k(3).tolist()

    def test_history_accumulates(self, paper_population_small: Population) -> None:
        marketplace = Marketplace(paper_population_small)
        tasks = [
            task_from_weights(f"t{i}", "gig", {"language_test": 1.0}) for i in range(4)
        ]
        records = marketplace.run(tasks)
        assert len(records) == 4
        assert len(marketplace.history) == 4

    def test_too_many_positions_rejected(self, small_population: Population) -> None:
        marketplace = Marketplace(small_population)
        task = Task(
            "t",
            "x",
            task_from_weights("inner", "x", {"skill": 1.0}).scoring,
            positions=100,
        )
        with pytest.raises(ScoringError, match="only 12 of 12 workers"):
            marketplace.post_task(task)


class TestRequirements:
    def test_requirements_filter_the_pool(
        self, paper_population_small: Population
    ) -> None:
        marketplace = Marketplace(paper_population_small)
        task = task_from_weights(
            "t",
            "gig",
            {"language_test": 1.0},
            positions=5,
            requirements={"approval_rate": 90.0},
        )
        record = marketplace.post_task(task)
        approvals = paper_population_small.observed_column("approval_rate")
        assert (approvals[record.ranking.order] >= 90.0).all()
        assert (approvals[record.hired] >= 90.0).all()

    def test_requirements_can_make_task_unfillable(
        self, paper_population_small: Population
    ) -> None:
        marketplace = Marketplace(paper_population_small)
        task = task_from_weights(
            "t",
            "gig",
            {"language_test": 1.0},
            positions=5,
            requirements={"approval_rate": 1000.0},
        )
        with pytest.raises(ScoringError, match="meet its requirements"):
            marketplace.post_task(task)

    def test_filtered_workers_get_zero_exposure(
        self, paper_population_small: Population
    ) -> None:
        from repro.marketplace.exposure import group_exposure
        from repro.marketplace.ranking import rank_workers
        from repro.marketplace.scoring import LinearScoringFunction

        eligible = paper_population_small.observed_column("approval_rate") >= 99.0
        ranking = rank_workers(
            paper_population_small,
            LinearScoringFunction("f", {"language_test": 1.0}),
            eligible=eligible,
        )
        exposure = group_exposure(ranking, paper_population_small, "gender")
        # Nearly everyone is filtered out, so mean exposures are tiny.
        assert all(value < 0.2 for value in exposure.values())


class TestHiringStatistics:
    def test_total_hires_counts_per_worker(
        self, paper_population_small: Population
    ) -> None:
        marketplace = Marketplace(paper_population_small)
        task = task_from_weights("t", "gig", {"language_test": 1.0}, positions=5)
        marketplace.post_task(task)
        marketplace.post_task(task)
        hires = marketplace.total_hires()
        assert hires.sum() == 10
        assert hires.max() == 2  # same deterministic top-5 both times

    def test_biased_scoring_skews_hire_share(
        self, paper_population_small: Population
    ) -> None:
        # Under the gender-biased f6, every hire goes to a male worker:
        # the demand-side symptom the audit is meant to explain.
        marketplace = Marketplace(paper_population_small)
        task = Task("t", "gig", paper_biased_functions()["f6"], positions=25)
        marketplace.post_task(task)
        shares = marketplace.hire_share_by_group("gender")
        assert shares["Male"] == pytest.approx(1.0)
        assert shares["Female"] == pytest.approx(0.0)

    def test_unbiased_scoring_roughly_proportional(
        self, paper_population_small: Population
    ) -> None:
        marketplace = Marketplace(paper_population_small)
        task = task_from_weights(
            "t", "gig", {"language_test": 0.5, "approval_rate": 0.5}, positions=150
        )
        marketplace.post_task(task)
        shares = marketplace.hire_share_by_group("gender")
        reference = marketplace.population_share("gender")
        for group in shares:
            assert shares[group] == pytest.approx(reference[group], abs=0.15)

    def test_population_share_sums_to_one(
        self, paper_population_small: Population
    ) -> None:
        marketplace = Marketplace(paper_population_small)
        for attribute in paper_population_small.schema.protected_names:
            assert sum(marketplace.population_share(attribute).values()) == pytest.approx(1.0)

    def test_hire_share_zero_history(self, small_population: Population) -> None:
        marketplace = Marketplace(small_population)
        shares = marketplace.hire_share_by_group("gender")
        assert all(share == 0.0 for share in shares.values())
