"""Crash-point torture harness: kill a subprocess at every durability boundary.

Every fsync/replace boundary in the durable stores carries a named
:func:`~repro.io.faultfs.crash_point`; arming ``REPRO_CRASH_POINT`` makes
a subprocess ``os._exit(86)`` the instant it crosses that boundary — a
power cut at exactly the worst moment.  For each of the canonical
:data:`~repro.service.chaos.CRASH_POINTS` this harness kills a driver
subprocess and asserts the three invariants:

1. **no acknowledged job is ever lost** — every ``ACK``'d submit replays
   from the survivor journal;
2. **no unacknowledged torn record is ever replayed** — replay succeeds
   (torn tails truncate, they never parse into ghost records);
3. **bit-identical recovery** — a restarted service re-runs the survivors
   and produces result digests identical to an uninterrupted baseline.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service.chaos import CRASH_EXIT_CODE, CRASH_POINTS
from repro.service.journal import JobJournal

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

pytestmark = pytest.mark.slow

JOB_COUNT = 4

#: Driver A: a real in-process service; prints ``ACK <id>`` only after
#: ``submit`` returns (i.e. after the group-committed fsync), then drains
#: and prints ``RESULT <id> <sha256>`` per finished job.
SERVICE_DRIVER = """
import hashlib, json, sys
workdir, count = sys.argv[1], int(sys.argv[2])
from repro.service import AuditJob, AuditService, ServiceConfig

service = AuditService(
    ServiceConfig(workdir, queue_limit=64, workers=1, port=None, poll_seconds=0.01)
)
service.start()
for index in range(count):
    service.submit(
        AuditJob(id=f"job-{index}", scenario="figure1", algorithm="balanced")
    )
    print(f"ACK job-{index}", flush=True)
assert service.drain(timeout=120), "drain timed out"
for info in sorted(service.jobs_snapshot(), key=lambda item: item["id"]):
    record = service.record(info["id"])
    if record.result is not None:
        digest = hashlib.sha256(
            json.dumps(record.result, sort_keys=True).encode()
        ).hexdigest()
        print(f"RESULT {record.job.id} {digest}", flush=True)
service.stop()
print("CLEAN", flush=True)
"""

#: Driver B: direct durable-store exercises (journal compaction, torn-tail
#: recovery, snapshot and checkpoint replaces) with the same ACK protocol.
STORES_DRIVER = """
import json, sys
mode, target = sys.argv[1], sys.argv[2]

if mode == "compact":
    from repro.service import AuditJob, JobState
    from repro.service.journal import JobJournal
    journal = JobJournal(target).open()
    for index in range(4):
        job = AuditJob(id=f"job-{index}", scenario="figure1", algorithm="balanced")
        journal.append_submit(job, float(index))
        journal.append_state(job.id, JobState.RUNNING, float(index), attempt=1)
        journal.append_state(
            job.id, JobState.DONE, float(index), result={"rows": [index]}
        )
        print(f"ACK job-{index}", flush=True)
    journal.compact_to()
    print("COMPACTED", flush=True)
    journal.close()
elif mode == "recover":
    from repro.service.journal import JobJournal
    JobJournal(target).open().close()  # recovery truncates the torn tail
    print("RECOVERED", flush=True)
elif mode == "snapshot":
    from repro.io.atomic import atomic_write_text
    for index in range(5):
        payload = {"version": index, "data": list(range(64))}
        atomic_write_text(
            target, json.dumps(payload, sort_keys=True), crash_scope="snapshot"
        )
        print(f"ACK {index}", flush=True)
elif mode == "checkpoint":
    from repro.simulation.checkpoint import CheckpointStore
    store = CheckpointStore(target)
    store.begin({"run": "torture"})
    for index in range(5):
        store.record_payload(f"cell-{index}", {"value": index})
        print(f"ACK cell-{index}", flush=True)
else:
    raise SystemExit(f"unknown mode {mode!r}")
print("CLEAN", flush=True)
"""


def _run(script: str, args: "list[str]", crash_point: "str | None" = None,
         skip: int = 0) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    env.pop("REPRO_CRASH_POINT", None)
    env.pop("REPRO_CRASH_POINT_SKIP", None)
    if crash_point is not None:
        env["REPRO_CRASH_POINT"] = crash_point
        env["REPRO_CRASH_POINT_SKIP"] = str(skip)
    return subprocess.run(
        [sys.executable, "-c", script, *args],
        capture_output=True,
        text=True,
        timeout=180,
        env=env,
    )


def _acked(proc: subprocess.CompletedProcess) -> "set[str]":
    return {
        line.split(" ", 1)[1]
        for line in proc.stdout.splitlines()
        if line.startswith("ACK ")
    }


def _results(proc: subprocess.CompletedProcess) -> "dict[str, str]":
    out = {}
    for line in proc.stdout.splitlines():
        if line.startswith("RESULT "):
            _, job_id, digest = line.split(" ")
            out[job_id] = digest
    return out


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Digests from one uninterrupted run — the bit-identity reference."""
    workdir = tmp_path_factory.mktemp("baseline")
    proc = _run(SERVICE_DRIVER, [str(workdir), str(JOB_COUNT)])
    assert proc.returncode == 0, proc.stderr
    assert "CLEAN" in proc.stdout
    digests = _results(proc)
    assert set(digests) == {f"job-{i}" for i in range(JOB_COUNT)}
    return digests


def test_crash_point_catalogue_is_complete():
    assert len(CRASH_POINTS) >= 8
    assert len(set(CRASH_POINTS)) == len(CRASH_POINTS)


def test_baseline_runs_are_bit_identical(tmp_path, baseline):
    proc = _run(SERVICE_DRIVER, [str(tmp_path), str(JOB_COUNT)])
    assert proc.returncode == 0, proc.stderr
    assert _results(proc) == baseline


JOURNAL_POINTS = [
    ("journal.append.after_write", 0),
    ("journal.append.after_write", 3),
    ("journal.append.after_write", 7),
    ("journal.sync.before_fsync", 0),
    ("journal.sync.before_fsync", 2),
    ("journal.sync.before_fsync", 5),
    ("journal.sync.after_fsync", 0),
    ("journal.sync.after_fsync", 2),
    ("journal.sync.after_fsync", 5),
]


class TestJournalCrashPoints:
    @pytest.mark.parametrize("point,skip", JOURNAL_POINTS)
    def test_kill_at_boundary_loses_no_acknowledged_job(
        self, tmp_path, baseline, point, skip
    ):
        proc = _run(SERVICE_DRIVER, [str(tmp_path), str(JOB_COUNT)],
                    crash_point=point, skip=skip)
        assert proc.returncode == CRASH_EXIT_CODE, (
            f"expected kill at {point} (skip={skip}); "
            f"rc={proc.returncode}\n{proc.stderr}"
        )
        acked = _acked(proc)
        # Invariant 2: the survivor journal replays cleanly — a torn tail
        # truncates, it never parses into a ghost record.
        journal = JobJournal(Path(tmp_path) / "journal.jsonl")
        state = journal.replay_state()
        replayed = set(state.jobs)
        # Invariant 1: every acknowledged submit survived the kill.
        assert acked <= replayed, f"acknowledged jobs lost: {acked - replayed}"
        # Invariant 3: a restarted service finishes the survivors with
        # digests identical to the uninterrupted baseline.
        recovery = _run(SERVICE_DRIVER, [str(tmp_path), "0"])
        assert recovery.returncode == 0, recovery.stderr
        assert "CLEAN" in recovery.stdout
        digests = _results(recovery)
        for job_id in acked:
            assert digests.get(job_id) == baseline[job_id], (
                f"{job_id}: recovered digest {digests.get(job_id)} != "
                f"baseline {baseline[job_id]}"
            )


class TestCompactionCrashPoints:
    @pytest.mark.parametrize(
        "point", ["journal.compact.before_replace", "journal.compact.after_replace"]
    )
    def test_kill_mid_compaction_leaves_old_or_new_never_torn(self, tmp_path, point):
        path = tmp_path / "journal.jsonl"
        proc = _run(STORES_DRIVER, ["compact", str(path)], crash_point=point)
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        acked = _acked(proc)
        assert acked == {f"job-{i}" for i in range(4)}
        state = JobJournal(path).replay_state()
        assert set(state.jobs) == acked
        for job_id in acked:
            record = state.jobs[job_id]
            assert record.state.value == "DONE"
            assert record.result == {"rows": [int(job_id.split("-")[1])]}

    def test_unarmed_compaction_round_trips(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        proc = _run(STORES_DRIVER, ["compact", str(path)])
        assert proc.returncode == 0, proc.stderr
        assert "COMPACTED" in proc.stdout
        state = JobJournal(path).replay_state()
        assert len(state.jobs) == 4


class TestRecoveryCrashPoint:
    def test_kill_during_torn_tail_truncation(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        # Build a clean journal, then tear its tail the way a power cut
        # mid-append does: a partial record with no newline.
        prep = _run(STORES_DRIVER, ["compact", str(path)])
        assert prep.returncode == 0, prep.stderr
        with open(path, "a") as handle:
            handle.write('{"type": "state", "id": "job-0", "sta')
        # Recovery is killed *before* the truncate lands.
        proc = _run(STORES_DRIVER, ["recover", str(path)],
                    crash_point="journal.recover.before_truncate")
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        # The tail is still torn; a second recovery must succeed and the
        # acknowledged prefix must replay in full.
        state = JobJournal(path).replay_state()
        assert set(state.jobs) == {f"job-{i}" for i in range(4)}
        rerun = _run(STORES_DRIVER, ["recover", str(path)])
        assert rerun.returncode == 0, rerun.stderr
        assert "RECOVERED" in rerun.stdout
        assert set(JobJournal(path).replay_state().jobs) == set(state.jobs)


class TestSnapshotCrashPoints:
    @pytest.mark.parametrize(
        "point,skip",
        [
            ("snapshot.before_replace", 0),
            ("snapshot.before_replace", 2),
            ("snapshot.after_replace", 0),
            ("snapshot.after_replace", 2),
        ],
    )
    def test_kill_mid_replace_leaves_old_or_new_never_torn(
        self, tmp_path, point, skip
    ):
        target = tmp_path / "snap.json"
        proc = _run(STORES_DRIVER, ["snapshot", str(target)],
                    crash_point=point, skip=skip)
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        acked = {int(a) for a in _acked(proc)}
        if point.endswith("before_replace") and not acked:
            # Killed before the very first replace: no file is legal.
            if not target.exists():
                return
        payload = json.loads(target.read_text())  # parses → never torn
        last_acked = max(acked) if acked else -1
        # before_replace: the file is the last acknowledged version;
        # after_replace: the in-flight (unacknowledged) version landed.
        assert payload["version"] in (last_acked, last_acked + 1)
        assert payload["data"] == list(range(64))


class TestCheckpointCrashPoints:
    @pytest.mark.parametrize(
        "point,skip",
        [
            ("checkpoint.before_replace", 1),
            ("checkpoint.before_replace", 3),
            ("checkpoint.after_replace", 1),
            ("checkpoint.after_replace", 3),
        ],
    )
    def test_kill_mid_record_keeps_every_acked_cell(self, tmp_path, point, skip):
        from repro.simulation.checkpoint import CheckpointStore

        proc = _run(STORES_DRIVER, ["checkpoint", str(tmp_path)],
                    crash_point=point, skip=skip)
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        acked = _acked(proc)
        payload = CheckpointStore(tmp_path).load()  # schema-gated parse
        cells = set(payload["cells"])
        assert acked <= cells, f"acked cells lost: {acked - cells}"
        for name in acked:
            assert payload["cells"][name]["payload"] == {
                "value": int(name.split("-")[1])
            }


def test_harness_covers_every_canonical_point():
    exercised = {p for p, _ in JOURNAL_POINTS}
    exercised |= {"journal.compact.before_replace", "journal.compact.after_replace"}
    exercised |= {"journal.recover.before_truncate"}
    exercised |= {"snapshot.before_replace", "snapshot.after_replace"}
    exercised |= {"checkpoint.before_replace", "checkpoint.after_replace"}
    assert exercised == set(CRASH_POINTS)
