"""Unit tests for permutation significance testing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.significance import (
    PermutationTestResult,
    noise_floor,
    permutation_test,
)
from repro.core.algorithms import get_algorithm
from repro.core.histogram import HistogramSpec
from repro.core.population import Population
from repro.core.unfairness import UnfairnessEvaluator
from repro.exceptions import PartitioningError
from repro.marketplace.biased import paper_biased_functions
from repro.marketplace.scoring import paper_functions


class TestPermutationTest:
    def test_planted_bias_is_significant(
        self, paper_population_small: Population
    ) -> None:
        scores = paper_biased_functions()["f6"](paper_population_small)
        result = get_algorithm("balanced").run(paper_population_small, scores)
        test = permutation_test(
            scores, result.partitioning, n_permutations=99, rng=0
        )
        assert test.significant
        assert test.p_value == pytest.approx(1 / 100)
        assert test.excess > 0.5  # 0.8 observed vs tiny noise floor

    def test_random_scores_not_significant_for_fixed_grouping(
        self, paper_population_small: Population
    ) -> None:
        # A *pre-declared* grouping (gender) on random scores: the observed
        # EMD must sit inside its own permutation null.
        scores = paper_functions()["f1"](paper_population_small)
        result = get_algorithm("single-attribute").run(paper_population_small, scores)
        test = permutation_test(scores, result.partitioning, n_permutations=199, rng=1)
        assert test.p_value > 0.01
        assert abs(test.excess) < 3 * max(test.null_std, 1e-6) + 0.05

    def test_observed_matches_evaluator(
        self, paper_population_small: Population
    ) -> None:
        scores = paper_biased_functions()["f7"](paper_population_small)
        result = get_algorithm("balanced").run(paper_population_small, scores)
        test = permutation_test(scores, result.partitioning, n_permutations=10, rng=2)
        evaluator = UnfairnessEvaluator(paper_population_small, scores)
        assert test.observed == pytest.approx(
            evaluator.unfairness(result.partitioning)
        )

    def test_reproducible_given_seed(self, paper_population_small: Population) -> None:
        scores = paper_functions()["f1"](paper_population_small)
        result = get_algorithm("single-attribute").run(paper_population_small, scores)
        first = permutation_test(scores, result.partitioning, n_permutations=50, rng=3)
        second = permutation_test(scores, result.partitioning, n_permutations=50, rng=3)
        assert first == second

    def test_custom_histogram_spec(self, paper_population_small: Population) -> None:
        scores = paper_biased_functions()["f6"](paper_population_small)
        result = get_algorithm("balanced").run(
            paper_population_small, scores, hist_spec=HistogramSpec(bins=20)
        )
        test = permutation_test(
            scores,
            result.partitioning,
            hist_spec=HistogramSpec(bins=20),
            n_permutations=20,
            rng=4,
        )
        assert test.observed == pytest.approx(result.unfairness)

    def test_shape_mismatch_rejected(self, paper_population_small: Population) -> None:
        scores = paper_functions()["f1"](paper_population_small)
        result = get_algorithm("single-attribute").run(paper_population_small, scores)
        with pytest.raises(PartitioningError, match="shape"):
            permutation_test(scores[:-1], result.partitioning)

    def test_zero_permutations_rejected(
        self, paper_population_small: Population
    ) -> None:
        scores = paper_functions()["f1"](paper_population_small)
        result = get_algorithm("single-attribute").run(paper_population_small, scores)
        with pytest.raises(PartitioningError, match="at least one"):
            permutation_test(scores, result.partitioning, n_permutations=0)

    def test_str_mentions_p_value(self, paper_population_small: Population) -> None:
        scores = paper_functions()["f1"](paper_population_small)
        result = get_algorithm("single-attribute").run(paper_population_small, scores)
        test = permutation_test(scores, result.partitioning, n_permutations=10, rng=5)
        assert "p=" in str(test)

    def test_result_dataclass_fields(self) -> None:
        result = PermutationTestResult(
            observed=0.5, null_mean=0.1, null_std=0.02, p_value=0.01, n_permutations=99
        )
        assert result.excess == pytest.approx(0.4)
        assert result.significant


class TestNoiseFloor:
    def test_smaller_groups_have_higher_floor(
        self, paper_population_small: Population
    ) -> None:
        scores = paper_functions()["f4"](paper_population_small)
        small_mean, __ = noise_floor([5, 5], scores, n_draws=100, rng=0)
        large_mean, __ = noise_floor([100, 100], scores, n_draws=100, rng=0)
        assert small_mean > large_mean

    def test_floor_matches_permutation_null(
        self, paper_population_small: Population
    ) -> None:
        # The noise floor for the audit's group sizes should agree with the
        # permutation test's null mean for the same partitioning.
        scores = paper_functions()["f1"](paper_population_small)
        result = get_algorithm("single-attribute").run(paper_population_small, scores)
        sizes = [p.size for p in result.partitioning]
        floor_mean, floor_std = noise_floor(sizes, scores, n_draws=200, rng=1)
        test = permutation_test(scores, result.partitioning, n_permutations=200, rng=2)
        assert floor_mean == pytest.approx(test.null_mean, abs=3 * floor_std + 0.01)

    def test_oversized_groups_rejected(
        self, paper_population_small: Population
    ) -> None:
        scores = paper_functions()["f1"](paper_population_small)
        with pytest.raises(PartitioningError, match="sum to"):
            noise_floor([1000, 1000], scores)

    def test_zero_size_group_rejected(
        self, paper_population_small: Population
    ) -> None:
        scores = paper_functions()["f1"](paper_population_small)
        with pytest.raises(PartitioningError, match=">= 1"):
            noise_floor([0, 10], scores)

    def test_deterministic_given_seed(self, paper_population_small: Population) -> None:
        scores = paper_functions()["f1"](paper_population_small)
        assert noise_floor([10, 10], scores, n_draws=50, rng=7) == noise_floor(
            [10, 10], scores, n_draws=50, rng=7
        )
