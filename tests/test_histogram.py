"""Unit tests for score histograms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.histogram import HistogramSpec
from repro.exceptions import MetricError


class TestHistogramSpec:
    def test_bin_width(self) -> None:
        assert HistogramSpec(bins=10).bin_width == pytest.approx(0.1)
        assert HistogramSpec(bins=4, low=0.0, high=2.0).bin_width == pytest.approx(0.5)

    def test_edges_and_centers(self) -> None:
        spec = HistogramSpec(bins=4)
        np.testing.assert_allclose(spec.edges, [0.0, 0.25, 0.5, 0.75, 1.0])
        np.testing.assert_allclose(spec.centers, [0.125, 0.375, 0.625, 0.875])

    def test_rejects_zero_bins(self) -> None:
        with pytest.raises(MetricError, match="at least one bin"):
            HistogramSpec(bins=0)

    def test_rejects_empty_range(self) -> None:
        with pytest.raises(MetricError, match="range is empty"):
            HistogramSpec(bins=10, low=1.0, high=1.0)


class TestBinning:
    def test_bin_indices_simple(self) -> None:
        spec = HistogramSpec(bins=10)
        scores = np.array([0.0, 0.05, 0.15, 0.95, 1.0])
        assert spec.bin_indices(scores).tolist() == [0, 0, 1, 9, 9]

    def test_max_score_lands_in_last_bin(self) -> None:
        spec = HistogramSpec(bins=5)
        assert spec.bin_indices(np.array([1.0]))[0] == 4

    def test_bin_edges_are_left_inclusive(self) -> None:
        spec = HistogramSpec(bins=10)
        assert spec.bin_indices(np.array([0.1]))[0] == 1
        assert spec.bin_indices(np.array([0.2]))[0] == 2

    def test_out_of_range_scores_rejected(self) -> None:
        spec = HistogramSpec(bins=10)
        with pytest.raises(MetricError, match="scores must lie"):
            spec.bin_indices(np.array([1.1]))
        with pytest.raises(MetricError, match="scores must lie"):
            spec.bin_indices(np.array([-0.1]))

    def test_nan_scores_rejected(self) -> None:
        with pytest.raises(MetricError, match="non-finite"):
            HistogramSpec().bin_indices(np.array([np.nan]))

    def test_histogram_counts(self) -> None:
        spec = HistogramSpec(bins=4)
        counts = spec.histogram(np.array([0.1, 0.1, 0.3, 0.9]))
        assert counts.tolist() == [2, 1, 0, 1]

    def test_histogram_total_equals_input_size(self) -> None:
        spec = HistogramSpec(bins=7)
        scores = np.linspace(0, 1, 53)
        assert spec.histogram(scores).sum() == 53

    def test_normalized_histogram_sums_to_one(self) -> None:
        spec = HistogramSpec(bins=10)
        pmf = spec.normalized_histogram(np.array([0.2, 0.4, 0.6]))
        assert pmf.sum() == pytest.approx(1.0)

    def test_normalized_histogram_of_empty_rejected(self) -> None:
        with pytest.raises(MetricError, match="empty partition"):
            HistogramSpec().normalized_histogram(np.array([]))

    def test_histogram_from_bin_indices_matches_direct(self) -> None:
        spec = HistogramSpec(bins=10)
        scores = np.array([0.05, 0.15, 0.15, 0.95])
        direct = spec.histogram(scores)
        via_indices = spec.histogram_from_bin_indices(spec.bin_indices(scores))
        assert direct.tolist() == via_indices.tolist()

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=100,
        ),
        st.integers(min_value=1, max_value=20),
    )
    def test_counts_conserve_mass_property(self, scores: list[float], bins: int) -> None:
        spec = HistogramSpec(bins=bins)
        counts = spec.histogram(np.array(scores))
        assert counts.sum() == len(scores)
        assert counts.shape == (bins,)

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_every_score_gets_a_valid_bin_property(self, score: float) -> None:
        spec = HistogramSpec(bins=10)
        index = spec.bin_indices(np.array([score]))[0]
        assert 0 <= index < 10
        # The score lies inside (or on the boundary of) its bin.
        assert spec.edges[index] <= score <= spec.edges[index + 1] + 1e-12
