"""Unit and property tests for the size-weighted unfairness variant."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import get_algorithm
from repro.core.histogram import HistogramSpec
from repro.core.partition import Partition
from repro.core.population import Population
from repro.core.unfairness import UnfairnessEvaluator
from repro.exceptions import MetricError, PartitioningError
from repro.metrics.base import get_metric
from repro.metrics.emd import average_pairwise_emd, sum_pairwise_abs_differences

SPEC = HistogramSpec(bins=10)

pmfs_strategy = st.integers(min_value=2, max_value=8).flatmap(
    lambda k: st.lists(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=10,
            max_size=10,
        ).map(lambda xs: np.array(xs) + 1e-9).map(lambda a: a / a.sum()),
        min_size=k,
        max_size=k,
    )
)


class TestWeightedSumPairwise:
    def test_matches_naive_weighted_sum(self) -> None:
        rng = np.random.default_rng(0)
        values = rng.uniform(size=15)
        weights = rng.uniform(0.5, 5.0, size=15)
        naive = sum(
            weights[i] * weights[j] * abs(values[i] - values[j])
            for i in range(15)
            for j in range(i + 1, 15)
        )
        assert sum_pairwise_abs_differences(values, weights) == pytest.approx(naive)

    def test_unit_weights_match_unweighted(self) -> None:
        rng = np.random.default_rng(1)
        values = rng.uniform(size=20)
        assert sum_pairwise_abs_differences(values, np.ones(20)) == pytest.approx(
            sum_pairwise_abs_differences(values)
        )

    def test_weight_shape_mismatch_rejected(self) -> None:
        with pytest.raises(MetricError, match="weights shape"):
            sum_pairwise_abs_differences(np.ones(3), np.ones(2))


class TestWeightedAveragePairwiseEMD:
    @given(pmfs=pmfs_strategy)
    @settings(max_examples=30, deadline=None)
    def test_equal_weights_reduce_to_uniform(self, pmfs) -> None:
        matrix = np.vstack(pmfs)
        k = matrix.shape[0]
        uniform = average_pairwise_emd(matrix, 0.1)
        weighted = average_pairwise_emd(matrix, 0.1, np.full(k, 3.7))
        assert weighted == pytest.approx(uniform, abs=1e-9)

    def test_matches_naive_weighted_average(self) -> None:
        rng = np.random.default_rng(2)
        pmfs = rng.dirichlet(np.ones(10), size=6)
        weights = rng.uniform(1, 100, size=6)
        metric = get_metric("emd")
        naive_total, naive_weight = 0.0, 0.0
        for i, j in itertools.combinations(range(6), 2):
            distance = metric.distance(pmfs[i], pmfs[j], SPEC)
            naive_total += weights[i] * weights[j] * distance
            naive_weight += weights[i] * weights[j]
        assert average_pairwise_emd(
            pmfs, SPEC.bin_width, weights
        ) == pytest.approx(naive_total / naive_weight)

    def test_large_group_pair_dominates(self) -> None:
        low = np.zeros(10)
        low[0] = 1.0
        high = np.zeros(10)
        high[9] = 1.0
        mid = np.zeros(10)
        mid[5] = 1.0
        pmfs = np.vstack([low, high, mid])
        # Two large groups far apart (EMD 0.9) and one tiny mid outlier.
        weights = np.array([1000.0, 1000.0, 1.0])
        weighted = average_pairwise_emd(pmfs, 0.1, weights)
        uniform = average_pairwise_emd(pmfs, 0.1)
        assert weighted == pytest.approx(0.9, abs=0.01)
        assert uniform == pytest.approx((0.9 + 0.5 + 0.4) / 3)

    def test_negative_weights_rejected(self) -> None:
        pmfs = np.vstack([np.ones(10) / 10, np.ones(10) / 10])
        with pytest.raises(MetricError, match="non-negative"):
            average_pairwise_emd(pmfs, 0.1, np.array([1.0, -1.0]))

    def test_generic_metric_weighted_average(self) -> None:
        metric = get_metric("tv")
        rng = np.random.default_rng(3)
        pmfs = rng.dirichlet(np.ones(10), size=4)
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        naive_total, naive_weight = 0.0, 0.0
        for i, j in itertools.combinations(range(4), 2):
            distance = metric.distance(pmfs[i], pmfs[j], SPEC)
            naive_total += weights[i] * weights[j] * distance
            naive_weight += weights[i] * weights[j]
        assert metric.average_pairwise(pmfs, SPEC, weights) == pytest.approx(
            naive_total / naive_weight
        )


class TestEvaluatorWeighting:
    def test_size_weighting_matches_manual(
        self, small_population: Population
    ) -> None:
        scores = small_population.observed_column("skill")
        evaluator = UnfairnessEvaluator(
            small_population, scores, weighting="size"
        )
        parts = [
            Partition(np.arange(8)),
            Partition(np.arange(8, 11)),
            Partition(np.array([11])),
        ]
        pmfs = evaluator.pmf_matrix(parts)
        expected = average_pairwise_emd(
            pmfs, evaluator.spec.bin_width, np.array([8.0, 3.0, 1.0])
        )
        assert evaluator.unfairness(parts) == pytest.approx(expected)

    def test_invalid_weighting_rejected(self, small_population: Population) -> None:
        scores = small_population.observed_column("skill")
        with pytest.raises(PartitioningError, match="weighting"):
            UnfairnessEvaluator(small_population, scores, weighting="nope")

    def test_algorithms_accept_weighting(
        self, paper_population_small: Population
    ) -> None:
        from repro.marketplace.biased import paper_biased_functions

        scores = paper_biased_functions()["f6"](paper_population_small)
        result = get_algorithm("balanced").run(
            paper_population_small, scores, weighting="size"
        )
        # The gender split has two near-equal groups: weighting barely moves
        # the pinned 0.8 value, and the found structure is unchanged.
        assert result.partitioning.attributes_used() == ("gender",)
        assert result.unfairness == pytest.approx(0.8, abs=0.05)

    def test_weighting_changes_value_on_unequal_groups(
        self, paper_population_small: Population
    ) -> None:
        # f8 makes female-America tiny vs the big male group: the two
        # objectives genuinely differ on its partitionings.
        from repro.marketplace.biased import paper_biased_functions

        scores = paper_biased_functions()["f8"](paper_population_small)
        uniform = get_algorithm("all-attributes").run(
            paper_population_small, scores, weighting="uniform"
        )
        weighted = get_algorithm("all-attributes").run(
            paper_population_small, scores, weighting="size"
        )
        assert uniform.unfairness != pytest.approx(weighted.unfairness, abs=1e-4)
