"""Unit tests for capacity-constrained task assignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.population import Population
from repro.exceptions import ScoringError
from repro.marketplace.assignment import assign_tasks
from repro.marketplace.biased import paper_biased_functions
from repro.marketplace.tasks import Task, task_from_weights
from repro.repair.quantile import repair_scores


def _tasks(n: int, positions: int = 5) -> list:
    return [
        task_from_weights(
            f"t{i}",
            "gig",
            {"language_test": 0.5, "approval_rate": 0.5},
            positions=positions,
        )
        for i in range(n)
    ]


class TestAssignTasks:
    def test_capacity_respected(self, paper_population_small: Population) -> None:
        plan = assign_tasks(paper_population_small, _tasks(10), capacity=2)
        assert plan.load.max() <= 2
        assert plan.load.sum() == sum(a.filled for a in plan.assignments)

    def test_capacity_one_spreads_work(self, paper_population_small: Population) -> None:
        plan = assign_tasks(paper_population_small, _tasks(4), capacity=1)
        all_hired = np.concatenate([a.hired for a in plan.assignments])
        assert len(all_hired) == len(set(all_hired.tolist()))  # no double-booking

    def test_unconstrained_platform_rehires_the_same_top_workers(
        self, paper_population_small: Population
    ) -> None:
        plan = assign_tasks(paper_population_small, _tasks(4), capacity=10)
        first = plan.assignments[0].hired.tolist()
        assert all(a.hired.tolist() == first for a in plan.assignments)

    def test_utility_decreases_as_capacity_tightens(
        self, paper_population_small: Population
    ) -> None:
        loose = assign_tasks(paper_population_small, _tasks(10), capacity=10)
        tight = assign_tasks(paper_population_small, _tasks(10), capacity=1)
        assert loose.total_utility >= tight.total_utility

    def test_runs_out_of_capacity_gracefully(self) -> None:
        # 12-worker population, tasks ask for more than capacity allows.
        from repro.core.attributes import CategoricalAttribute, ObservedAttribute
        from repro.core.schema import WorkerSchema

        schema = WorkerSchema(
            protected=(CategoricalAttribute("g", ("a", "b")),),
            observed=(ObservedAttribute("skill", 0.0, 1.0),),
        )
        population = Population(
            schema,
            {"g": np.zeros(4, dtype=int)},
            {"skill": np.linspace(0.1, 0.9, 4)},
        )
        tasks = [
            task_from_weights(f"t{i}", "gig", {"skill": 1.0}, positions=3)
            for i in range(3)
        ]
        plan = assign_tasks(population, tasks, capacity=1)
        assert plan.unfilled_positions == 9 - 4
        assert plan.assignments[-1].filled < 3

    def test_requirements_filter_before_assignment(
        self, paper_population_small: Population
    ) -> None:
        task = task_from_weights(
            "t",
            "gig",
            {"language_test": 1.0},
            positions=5,
            requirements={"approval_rate": 90.0},
        )
        plan = assign_tasks(paper_population_small, [task])
        approvals = paper_population_small.observed_column("approval_rate")
        assert (approvals[plan.assignments[0].hired] >= 90.0).all()

    def test_invalid_capacity_rejected(self, paper_population_small: Population) -> None:
        with pytest.raises(ScoringError, match=">= 1"):
            assign_tasks(paper_population_small, _tasks(1), capacity=0)

    def test_override_shape_checked(self, paper_population_small: Population) -> None:
        task = _tasks(1)[0]
        with pytest.raises(ScoringError, match="shape"):
            assign_tasks(
                paper_population_small,
                [task],
                scores_override={task.task_id: np.array([0.5])},
            )


class TestFairnessConsequences:
    def test_biased_scoring_concentrates_load(
        self, paper_population_small: Population
    ) -> None:
        scoring = paper_biased_functions()["f6"]
        tasks = [
            Task(f"t{i}", "gig", scoring, positions=10) for i in range(5)
        ]
        plan = assign_tasks(paper_population_small, tasks, capacity=1)
        shares = plan.load_share_by_group(paper_population_small, "gender")
        assert shares["Male"] == pytest.approx(1.0)

    def test_repair_override_redistributes_load(
        self, paper_population_small: Population
    ) -> None:
        scoring = paper_biased_functions()["f6"]
        scores = scoring(paper_population_small)
        audit = get_algorithm("balanced").run(paper_population_small, scores)
        repaired = repair_scores(scores, audit.partitioning, amount=1.0)

        tasks = [Task(f"t{i}", "gig", scoring, positions=10) for i in range(5)]
        overrides = {task.task_id: repaired for task in tasks}
        plan = assign_tasks(
            paper_population_small, tasks, capacity=1, scores_override=overrides
        )
        shares = plan.load_share_by_group(paper_population_small, "gender")
        assert 0.3 < shares["Male"] < 0.7  # near-proportional after repair
        assert 0.3 < shares["Female"] < 0.7