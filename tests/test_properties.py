"""Cross-module property-based tests (hypothesis).

These exercise the core invariants on *arbitrary* generated populations and
scores, not just the paper's configurations:

* every algorithm always returns a full disjoint partitioning;
* the reported objective always matches an independent re-evaluation;
* unfairness is invariant under permutations of the worker order;
* refining a partitioning never changes which workers exist where;
* repair never increases the group EMD.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import get_algorithm
from repro.core.attributes import CategoricalAttribute, ObservedAttribute
from repro.core.histogram import HistogramSpec
from repro.core.population import Population
from repro.core.schema import WorkerSchema
from repro.core.unfairness import UnfairnessEvaluator
from repro.repair.quantile import repair_scores


@st.composite
def population_and_scores(draw) -> tuple[Population, np.ndarray]:
    """A random small population (2-3 protected attributes) with scores."""
    n = draw(st.integers(min_value=4, max_value=60))
    n_attributes = draw(st.integers(min_value=2, max_value=3))
    attributes = []
    columns = {}
    for i in range(n_attributes):
        cardinality = draw(st.integers(min_value=2, max_value=4))
        values = tuple(f"v{i}_{j}" for j in range(cardinality))
        attributes.append(CategoricalAttribute(f"attr{i}", values))
        columns[f"attr{i}"] = np.array(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=cardinality - 1),
                    min_size=n,
                    max_size=n,
                )
            )
        )
    scores = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    schema = WorkerSchema(
        protected=tuple(attributes),
        observed=(ObservedAttribute("skill", 0.0, 1.0),),
    )
    population = Population(schema, columns, {"skill": scores})
    return population, scores


ALGORITHMS = ["balanced", "unbalanced", "r-balanced", "r-unbalanced", "all-attributes"]


class TestPartitioningInvariants:
    @given(data=population_and_scores(), algorithm=st.sampled_from(ALGORITHMS))
    @settings(max_examples=40, deadline=None)
    def test_always_full_disjoint_cover(self, data, algorithm: str) -> None:
        population, scores = data
        result = get_algorithm(algorithm).run(population, scores, rng=0)
        # Partitioning.__init__ validates cover+disjointness; re-check members.
        combined = np.sort(
            np.concatenate([p.indices for p in result.partitioning])
        )
        assert combined.tolist() == list(range(population.size))

    @given(data=population_and_scores(), algorithm=st.sampled_from(ALGORITHMS))
    @settings(max_examples=40, deadline=None)
    def test_reported_objective_matches_reevaluation(self, data, algorithm: str) -> None:
        population, scores = data
        result = get_algorithm(algorithm).run(population, scores, rng=1)
        evaluator = UnfairnessEvaluator(population, scores)
        assert abs(result.unfairness - evaluator.unfairness(result.partitioning)) < 1e-9

    @given(data=population_and_scores())
    @settings(max_examples=30, deadline=None)
    def test_unfairness_nonnegative_and_bounded(self, data) -> None:
        population, scores = data
        result = get_algorithm("balanced").run(population, scores)
        # EMD in score units over [0, 1] cannot exceed the score range.
        assert 0.0 <= result.unfairness <= 1.0

    @given(data=population_and_scores())
    @settings(max_examples=25, deadline=None)
    def test_constraint_paths_select_their_members(self, data) -> None:
        population, scores = data
        result = get_algorithm("unbalanced").run(population, scores)
        for partition in result.partitioning:
            mask = np.ones(population.size, dtype=bool)
            for attribute, code in partition.constraints:
                mask &= population.partition_codes(attribute) == code
            assert np.array_equal(np.nonzero(mask)[0], partition.indices)


class TestObjectiveInvariants:
    @given(data=population_and_scores(), seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_invariant_under_worker_permutation(self, data, seed: int) -> None:
        population, scores = data
        rng = np.random.default_rng(seed)
        permutation = rng.permutation(population.size)
        shuffled = Population(
            population.schema,
            {
                name: population.protected_column(name)[permutation]
                for name in population.schema.protected_names
            },
            {
                name: population.observed_column(name)[permutation]
                for name in population.schema.observed_names
            },
        )
        original = get_algorithm("all-attributes").run(population, scores)
        reordered = get_algorithm("all-attributes").run(
            shuffled, scores[permutation]
        )
        assert abs(original.unfairness - reordered.unfairness) < 1e-9

    @given(data=population_and_scores(), bins=st.integers(min_value=2, max_value=30))
    @settings(max_examples=25, deadline=None)
    def test_any_bin_count_is_legal(self, data, bins: int) -> None:
        population, scores = data
        result = get_algorithm("balanced").run(
            population, scores, hist_spec=HistogramSpec(bins=bins)
        )
        assert 0.0 <= result.unfairness <= 1.0


class TestStructuralInvariants:
    @given(data=population_and_scores(), algorithm=st.sampled_from(ALGORITHMS))
    @settings(max_examples=25, deadline=None)
    def test_split_tree_builds_and_renders(self, data, algorithm: str) -> None:
        from repro.core.tree import build_split_tree, render_split_tree

        population, scores = data
        result = get_algorithm(algorithm).run(population, scores, rng=2)
        tree = build_split_tree(result.partitioning)
        assert len(tree.leaves()) == result.partitioning.k
        text = render_split_tree(tree, population.schema)
        assert text  # never empty, never raises

    @given(data=population_and_scores())
    @settings(max_examples=15, deadline=None)
    def test_population_csv_round_trip(self, data) -> None:
        import tempfile
        from pathlib import Path

        from repro.io.serialization import load_population, save_population

        population, __ = data
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "pop.csv"
            save_population(population, path)
            restored = load_population(path)
        assert restored.size == population.size
        for name in population.schema.protected_names:
            np.testing.assert_array_equal(
                restored.protected_column(name), population.protected_column(name)
            )
        for name in population.schema.observed_names:
            np.testing.assert_allclose(
                restored.observed_column(name), population.observed_column(name)
            )


class TestRepairInvariants:
    @given(data=population_and_scores(), amount=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_repair_never_increases_unfairness_at_full_amount(self, data, amount) -> None:
        population, scores = data
        result = get_algorithm("all-attributes").run(population, scores)
        before = result.unfairness
        repaired = repair_scores(scores, result.partitioning, amount=1.0)
        after = UnfairnessEvaluator(population, repaired).unfairness(result.partitioning)
        assert after <= before + 0.05  # small slack for binning effects

    @given(data=population_and_scores())
    @settings(max_examples=25, deadline=None)
    def test_repair_preserves_score_bounds(self, data) -> None:
        population, scores = data
        result = get_algorithm("all-attributes").run(population, scores)
        repaired = repair_scores(scores, result.partitioning, amount=1.0)
        assert repaired.min() >= scores.min() - 1e-9
        assert repaired.max() <= scores.max() + 1e-9
