"""Fault injection + retry machinery: determinism, bit-identity, typed failure.

The contract under test (see docs/robustness.md): a run that survives
injected faults returns values bit-identical to an undisturbed run, because
every recovery path (retry, straggler re-dispatch, pool rebuild, sequential
degradation) recomputes through the same kernels; and an exhausted retry
budget fails fast with a typed error instead of hanging.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.engine.backends import ProcessPoolBackend, get_backend
from repro.engine.faults import FaultConfig, FaultInjectionBackend
from repro.engine.resilience import RetryingBackend, RetryPolicy, validate_batch
from repro.exceptions import (
    BackendExhaustedError,
    BackendTimeoutError,
    CorruptResultError,
    PartitioningError,
    WorkerCrashError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.simulation.config import PaperConfig
from repro.simulation.runner import run_scenario
from repro.simulation.scenarios import table1_scenario

FAST = RetryPolicy(backoff_seconds=0.0)


def _counters(metrics: MetricsRegistry) -> dict:
    return metrics.as_dict()["counters"]


# --------------------------------------------------------------- FaultConfig


class TestFaultConfig:
    def test_roll_is_deterministic_and_seed_sensitive(self):
        config = FaultConfig(crash_rate=0.5, seed=3)
        keys = [f"0-{i}-0" for i in range(200)]
        first = [config.roll("crash", k) for k in keys]
        assert first == [config.roll("crash", k) for k in keys]
        other = FaultConfig(crash_rate=0.5, seed=4)
        assert first != [other.roll("crash", k) for k in keys]
        # rate is respected in aggregate (crc32 is uniform enough for this)
        assert 0.3 < np.mean(first) < 0.7

    def test_zero_rate_never_fires(self):
        config = FaultConfig(crash_rate=0.0, seed=1)
        assert not any(config.roll("crash", str(i)) for i in range(100))

    def test_rates_validated(self):
        with pytest.raises(PartitioningError):
            FaultConfig(crash_rate=1.5)
        with pytest.raises(PartitioningError):
            FaultConfig(hang_rate=-0.1)
        with pytest.raises(PartitioningError):
            FaultConfig(hang_seconds=0.0)

    def test_corruption_is_always_detectable(self):
        config = FaultConfig(corrupt_rate=1.0, seed=9)
        clean = [0.1, 0.2, 0.3, 0.4]
        for key in (f"k{i}" for i in range(50)):
            damaged = config.corrupt_values(clean, key)
            with pytest.raises(CorruptResultError):
                validate_batch(damaged, len(clean))

    def test_parse_round_trip(self):
        config = FaultConfig.parse(
            "crash=0.3, hang=0.1, corrupt=0.05, seed=7, hang-seconds=0.5, hard=1"
        )
        assert config == FaultConfig(
            crash_rate=0.3,
            hang_rate=0.1,
            corrupt_rate=0.05,
            seed=7,
            hang_seconds=0.5,
            crash_hard=True,
        )

    @pytest.mark.parametrize(
        "spec", ["crash", "bogus=1", "crash=2.0", "seed=x", "crash=0.1,,hang"]
    )
    def test_parse_rejects_malformed(self, spec):
        with pytest.raises(ValueError):
            FaultConfig.parse(spec)


# ------------------------------------------------- RetryingBackend (generic)


def _audit_unfairness(population, scores, backend):
    result = get_algorithm("balanced").run(population, scores, backend=backend)
    return result.unfairness


class TestRetryingBackend:
    @pytest.mark.parametrize("rate", [0.1, 0.3, 0.5])
    def test_bit_identical_under_injected_crashes(
        self, paper_population_small, rate
    ):
        scores = np.random.default_rng(0).uniform(size=paper_population_small.size)
        clean = _audit_unfairness(paper_population_small, scores, None)
        faults = FaultConfig(crash_rate=rate, corrupt_rate=rate / 2, seed=17)
        policy = RetryPolicy(max_retries=10, backoff_seconds=0.0)
        backend = get_backend("sequential", policy=policy, faults=faults)
        assert _audit_unfairness(paper_population_small, scores, backend) == clean

    def test_counters_and_retry_spans(self, small_population):
        scores = np.linspace(0.0, 0.99, small_population.size)
        faults = FaultConfig(crash_rate=0.5, seed=0)  # seed 0 fires on call-0
        backend = get_backend(
            "sequential",
            policy=RetryPolicy(max_retries=10, backoff_seconds=0.0),
            faults=faults,
        )
        metrics = MetricsRegistry()
        tracer = Tracer()
        get_algorithm("balanced").run(
            small_population,
            scores,
            backend=backend,
            tracer=tracer,
            metrics=metrics,
        )
        counters = _counters(metrics)
        assert counters["engine.retries"] >= 1
        assert counters["engine.worker_crashes"] >= 1
        assert counters["engine.faults_injected"] >= 1
        assert any(s.name == "backend.retry" for s in tracer.iter_spans())

    def test_exhaustion_raises_typed_error_not_hang(self, small_population):
        scores = np.linspace(0.0, 0.99, small_population.size)
        faults = FaultConfig(crash_rate=1.0, seed=1)
        policy = RetryPolicy(
            max_retries=2, backoff_seconds=0.0, fallback_sequential=False
        )
        backend = get_backend("sequential", policy=policy, faults=faults)
        with pytest.raises(BackendExhaustedError) as excinfo:
            get_algorithm("balanced").run(small_population, scores, backend=backend)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, WorkerCrashError)

    def test_exhaustion_with_fallback_recovers_bit_identically(
        self, small_population
    ):
        scores = np.linspace(0.0, 0.99, small_population.size)
        clean = _audit_unfairness(small_population, scores, None)
        faults = FaultConfig(crash_rate=1.0, seed=1)
        backend = get_backend(
            "sequential",
            policy=RetryPolicy(max_retries=1, backoff_seconds=0.0),
            faults=faults,
        )
        metrics = MetricsRegistry()
        result = get_algorithm("balanced").run(
            small_population, scores, backend=backend, metrics=metrics
        )
        assert result.unfairness == clean
        assert _counters(metrics)["engine.backend_fallbacks"] >= 1

    def test_timeout_reaps_hung_dispatch(self, small_population):
        scores = np.linspace(0.0, 0.99, small_population.size)
        clean = _audit_unfairness(small_population, scores, None)
        faults = FaultConfig(hang_rate=0.3, seed=5, hang_seconds=0.35)
        policy = RetryPolicy(
            max_retries=10, timeout_seconds=0.1, backoff_seconds=0.0
        )
        backend = get_backend("sequential", policy=policy, faults=faults)
        metrics = MetricsRegistry()
        result = get_algorithm("balanced").run(
            small_population, scores, backend=backend, metrics=metrics
        )
        assert result.unfairness == clean
        assert _counters(metrics)["engine.timeouts"] >= 1

    def test_wrapper_preserves_backend_identity(self):
        inner = get_backend("sequential")
        wrapped = RetryingBackend(inner, FAST)
        assert wrapped.name == inner.name
        assert wrapped.workers == inner.workers

    def test_policy_validation(self):
        with pytest.raises(PartitioningError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(PartitioningError):
            RetryPolicy(timeout_seconds=0.0)
        with pytest.raises(PartitioningError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(PartitioningError):
            RetryPolicy(jitter=2.0)

    def test_backoff_schedule_grows(self):
        policy = RetryPolicy(backoff_seconds=0.1, backoff_multiplier=2.0, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.4)


class TestValidateBatch:
    def test_accepts_clean_values(self):
        assert validate_batch([0.0, 1.5], 2) == [0.0, 1.5]

    @pytest.mark.parametrize(
        "values,expected",
        [([0.1], 2), (None, 1), ([0.1, float("nan")], 2), ([float("inf")], 1)],
    )
    def test_rejects_damage(self, values, expected):
        with pytest.raises(CorruptResultError):
            validate_batch(values, expected)


# ----------------------------------------------- ProcessPoolBackend (native)


@pytest.mark.slow
class TestProcessPoolFaults:
    """Worker-side injection: real cross-process crashes, hangs, corruption."""

    def test_chaotic_pool_run_bit_identical_to_clean_sequential(self):
        # The ISSUE's acceptance scenario: crash-rate 0.3 / hang-rate 0.1 on
        # a table1-style run must converge to the exact clean values.
        scenario = table1_scenario(PaperConfig(n_workers=80, seed=1))
        clean = run_scenario(scenario, algorithms=("balanced",), seed=3)
        metrics = MetricsRegistry()
        policy = RetryPolicy(
            max_retries=8, timeout_seconds=5.0, backoff_seconds=0.0
        )
        faults = FaultConfig(
            crash_rate=0.3, hang_rate=0.1, corrupt_rate=0.1, seed=11,
            hang_seconds=0.2,
        )
        chaotic = run_scenario(
            scenario,
            algorithms=("balanced",),
            seed=3,
            backend="process",
            workers=2,
            metrics=metrics,
            retry_policy=policy,
            fault_config=faults,
        )
        for clean_row, chaotic_row in zip(clean.rows, chaotic.rows):
            assert chaotic_row.unfairness == clean_row.unfairness
            assert chaotic_row.attributes_used == clean_row.attributes_used
        counters = _counters(metrics)
        assert counters["engine.retries"] >= 1
        assert counters.get("engine.worker_crashes", 0) >= 1

    def test_straggler_redispatch_on_timeout(self):
        scenario = table1_scenario(PaperConfig(n_workers=60, seed=1))
        clean = run_scenario(scenario, algorithms=("balanced",), seed=3)
        metrics = MetricsRegistry()
        policy = RetryPolicy(
            max_retries=6, timeout_seconds=0.6, backoff_seconds=0.0
        )
        faults = FaultConfig(hang_rate=0.15, seed=5, hang_seconds=3.0)
        hungover = run_scenario(
            scenario,
            algorithms=("balanced",),
            seed=3,
            backend="process",
            workers=2,
            metrics=metrics,
            retry_policy=policy,
            fault_config=faults,
        )
        assert hungover.rows[0].unfairness == clean.rows[0].unfairness
        counters = _counters(metrics)
        assert counters["engine.timeouts"] >= 1
        assert counters["engine.straggler_redispatches"] >= 1

    def test_hard_crash_rebuilds_pool_or_degrades(self):
        # os._exit in a worker breaks the pool; the backend must rebuild (or
        # ultimately degrade to sequential) and still return exact values.
        scenario = table1_scenario(PaperConfig(n_workers=60, seed=1))
        clean = run_scenario(scenario, algorithms=("balanced",), seed=3)
        metrics = MetricsRegistry()
        policy = RetryPolicy(max_retries=4, backoff_seconds=0.0)
        faults = FaultConfig(crash_rate=0.05, seed=13, crash_hard=True)
        battered = run_scenario(
            scenario,
            algorithms=("balanced",),
            seed=3,
            backend="process",
            workers=2,
            metrics=metrics,
            retry_policy=policy,
            fault_config=faults,
        )
        assert battered.rows[0].unfairness == clean.rows[0].unfairness
        counters = _counters(metrics)
        assert (
            counters.get("engine.pool_rebuilds", 0) >= 1
            or counters.get("engine.backend_fallbacks", 0) >= 1
        )

    def test_exhausted_pool_raises_typed_error(self, paper_population_small):
        scores = np.random.default_rng(0).uniform(size=paper_population_small.size)
        policy = RetryPolicy(
            max_retries=1, backoff_seconds=0.0, fallback_sequential=False
        )
        faults = FaultConfig(crash_rate=1.0, seed=1)
        backend = ProcessPoolBackend(workers=2, policy=policy, faults=faults)
        try:
            with pytest.raises(BackendExhaustedError):
                get_algorithm("balanced").run(
                    paper_population_small, scores, backend=backend
                )
        finally:
            backend.close()

    def test_hang_injection_requires_timeout(self):
        with pytest.raises(PartitioningError):
            ProcessPoolBackend(
                workers=2,
                policy=RetryPolicy(),
                faults=FaultConfig(hang_rate=0.1),
            )

    def test_degraded_backend_serves_locally(self, paper_population_small):
        scores = np.random.default_rng(0).uniform(size=paper_population_small.size)
        clean = _audit_unfairness(paper_population_small, scores, None)
        backend = ProcessPoolBackend(workers=2, policy=FAST)
        backend._degraded = True
        try:
            assert (
                _audit_unfairness(paper_population_small, scores, backend) == clean
            )
            assert backend.degraded
        finally:
            backend.close()


# ------------------------------------------------------------------ CLI glue


class TestFaultCli:
    def test_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "audit",
                "pop.csv",
                "--engine-retries",
                "5",
                "--engine-timeout",
                "2.5",
                "--engine-retry-backoff",
                "0.01",
                "--engine-no-fallback",
                "--inject-faults",
                "crash=0.3,hang=0.1,seed=7",
            ]
        )
        assert args.engine_retries == 5
        assert args.engine_timeout == 2.5
        assert args.engine_no_fallback
        assert args.inject_faults == FaultConfig(
            crash_rate=0.3, hang_rate=0.1, seed=7
        )

    def test_bad_fault_spec_exits(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["audit", "pop.csv", "--inject-faults", "bogus=1"]
            )

    def test_resilience_defaults_timeout_for_hangs(self):
        from repro.cli import _resilience, build_parser

        args = build_parser().parse_args(
            ["audit", "pop.csv", "--inject-faults", "hang=0.2,seed=1"]
        )
        policy, faults = _resilience(args)
        assert policy is not None and policy.timeout_seconds == 5.0
        assert faults.hang_rate == 0.2

    def test_resilience_defaults_off_without_flags(self):
        from repro.cli import _resilience, build_parser

        args = build_parser().parse_args(["audit", "pop.csv"])
        assert _resilience(args) == (None, None)


class TestFaultInjectionBackendWrapper:
    def test_counts_injected_faults(self, small_population):
        scores = np.linspace(0.0, 0.99, small_population.size)
        faults = FaultConfig(crash_rate=1.0, seed=1)
        inner = get_backend("sequential")
        backend = RetryingBackend(
            FaultInjectionBackend(inner, faults),
            RetryPolicy(max_retries=0, backoff_seconds=0.0),
        )
        metrics = MetricsRegistry()
        get_algorithm("balanced").run(
            small_population, scores, backend=backend, metrics=metrics
        )
        counters = _counters(metrics)
        assert counters["engine.faults_injected"] >= 1
        assert counters["engine.backend_fallbacks"] >= 1
