"""Unit and integration tests for the realistic correlated generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.significance import permutation_test
from repro.core.algorithms import get_algorithm
from repro.exceptions import PopulationError
from repro.marketplace.scoring import paper_functions
from repro.simulation.realistic import generate_realistic_population


@pytest.fixture(scope="module")
def realistic():
    return generate_realistic_population(3000, seed=0, bias_strength=1.0)


class TestGeneration:
    def test_respects_paper_domains(self, realistic) -> None:
        years = realistic.protected_column("year_of_birth")
        assert years.min() >= 1950 and years.max() <= 2009
        experience = realistic.protected_column("years_experience")
        assert experience.min() >= 0 and experience.max() <= 30
        for name in ("language_test", "approval_rate"):
            column = realistic.observed_column(name)
            assert column.min() >= 25.0 and column.max() <= 100.0

    def test_reproducible(self) -> None:
        first = generate_realistic_population(100, seed=5)
        second = generate_realistic_population(100, seed=5)
        np.testing.assert_array_equal(
            first.observed_column("language_test"),
            second.observed_column("language_test"),
        )

    def test_zero_strength_is_independent_uniform_like(self) -> None:
        population = generate_realistic_population(8000, seed=1, bias_strength=0.0)
        country = population.protected_column("country")
        language = population.protected_column("language")
        # Language distribution must be (near) identical across countries.
        shares = [
            np.bincount(language[country == c], minlength=3) / (country == c).sum()
            for c in range(3)
        ]
        for a, b in zip(shares, shares[1:]):
            assert np.abs(a - b).max() < 0.06

    def test_full_strength_plants_country_language_correlation(
        self, realistic
    ) -> None:
        country = realistic.protected_column("country")
        language = realistic.protected_column("language")
        american_english = (language[country == 0] == 0).mean()
        indian_indian = (language[country == 1] == 1).mean()
        assert american_english > 0.7
        assert indian_indian > 0.5

    def test_language_test_separates_languages(self, realistic) -> None:
        language = realistic.protected_column("language")
        test = realistic.observed_column("language_test")
        assert test[language == 0].mean() > test[language == 1].mean() + 15

    def test_experience_bounded_by_age(self, realistic) -> None:
        age = 2019 - realistic.protected_column("year_of_birth")
        experience = realistic.protected_column("years_experience")
        assert (experience <= np.maximum(age - 16, 0)).all()

    def test_approval_rises_with_experience(self, realistic) -> None:
        experience = realistic.protected_column("years_experience")
        approval = realistic.observed_column("approval_rate")
        young = approval[experience <= 5].mean()
        seasoned = approval[experience >= 25].mean()
        assert seasoned > young + 15

    def test_invalid_inputs_rejected(self) -> None:
        with pytest.raises(PopulationError, match=">= 1"):
            generate_realistic_population(0)
        with pytest.raises(PopulationError, match="bias_strength"):
            generate_realistic_population(10, bias_strength=1.5)


class TestIndirectDiscriminationAudit:
    def test_audit_of_f4_finds_language_channel(self, realistic) -> None:
        # f4 = LanguageTest only: a facially neutral function that
        # discriminates indirectly through the language correlation.
        scores = paper_functions()["f4"](realistic)
        result = get_algorithm("balanced").run(realistic, scores)
        assert "language" in result.partitioning.attributes_used()

    def test_indirect_bias_is_statistically_significant(self, realistic) -> None:
        # Unlike the paper's random data, the unfairness here is real.
        scores = paper_functions()["f4"](realistic)
        result = get_algorithm("single-attribute").run(realistic, scores)
        test = permutation_test(scores, result.partitioning, n_permutations=99, rng=0)
        assert test.significant
        assert test.excess > 0.05

    def test_signal_above_noise_grows_with_bias_strength(self) -> None:
        # The raw objective is NOT monotone in strength: random data drives
        # the search to a deep partitioning whose sampling noise exceeds the
        # coarse real signal.  The monotone quantity is the excess over the
        # permutation null of a fixed (language) grouping.
        from repro.core.partition import Partition, Partitioning
        from repro.core.splitting import split_partition

        excesses = []
        for strength in (0.0, 0.5, 1.0):
            population = generate_realistic_population(
                3000, seed=3, bias_strength=strength
            )
            scores = paper_functions()["f4"](population)
            by_language = Partitioning(
                split_partition(
                    population, Partition(population.all_indices()), "language"
                ),
                population.size,
            )
            test = permutation_test(scores, by_language, n_permutations=99, rng=1)
            excesses.append(test.excess)
        assert excesses[2] > excesses[1] > excesses[0]
        assert excesses[0] == pytest.approx(0.0, abs=0.02)  # pure noise at 0
