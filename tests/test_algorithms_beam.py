"""Unit tests for the beam-search extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.population import Population
from repro.marketplace.biased import paper_biased_functions


class TestBeamSearch:
    def test_full_disjoint_partitioning(
        self, paper_population_small: Population
    ) -> None:
        scores = np.random.default_rng(0).uniform(size=paper_population_small.size)
        result = get_algorithm("beam").run(paper_population_small, scores)
        assert result.partitioning.population_size == paper_population_small.size

    def test_balanced_tree_property(self, paper_population_small: Population) -> None:
        scores = np.random.default_rng(1).uniform(size=paper_population_small.size)
        result = get_algorithm("beam").run(paper_population_small, scores)
        attribute_sets = {
            frozenset(p.constrained_attributes()) for p in result.partitioning
        }
        assert len(attribute_sets) == 1

    def test_never_below_greedy_balanced(
        self, paper_population_small: Population
    ) -> None:
        # Beam search explores strictly more attribute orders than the
        # greedy and keeps the best partitioning seen, so it can never do
        # worse on the same data.
        for function in ("f6", "f7", "f9"):
            scores = paper_biased_functions()[function](paper_population_small)
            greedy = get_algorithm("balanced").run(paper_population_small, scores)
            beam = get_algorithm("beam", beam_width=3).run(
                paper_population_small, scores
            )
            assert beam.unfairness >= greedy.unfairness - 1e-9, function

    def test_wider_beam_never_worse(self, paper_population_small: Population) -> None:
        scores = paper_biased_functions()["f7"](paper_population_small)
        narrow = get_algorithm("beam", beam_width=1).run(
            paper_population_small, scores
        )
        wide = get_algorithm("beam", beam_width=6).run(paper_population_small, scores)
        assert wide.unfairness >= narrow.unfairness - 1e-9

    def test_finds_planted_gender_bias(self, paper_population_small: Population) -> None:
        scores = paper_biased_functions()["f6"](paper_population_small)
        result = get_algorithm("beam").run(paper_population_small, scores)
        assert result.partitioning.attributes_used() == ("gender",)
        assert result.unfairness == pytest.approx(0.8, abs=0.05)

    def test_returns_shallow_tree_when_deeper_dilutes(
        self, small_population: Population
    ) -> None:
        scores = np.full(small_population.size, 0.5)
        result = get_algorithm("beam").run(small_population, scores)
        assert result.unfairness == 0.0
        assert result.partitioning.k == 1  # best seen is the root itself

    def test_invalid_width_rejected(self) -> None:
        with pytest.raises(ValueError, match=">= 1"):
            get_algorithm("beam", beam_width=0)

    def test_deterministic(self, paper_population_small: Population) -> None:
        scores = np.random.default_rng(2).uniform(size=paper_population_small.size)
        first = get_algorithm("beam").run(paper_population_small, scores)
        second = get_algorithm("beam").run(paper_population_small, scores)
        assert first.partitioning.canonical_key() == second.partitioning.canonical_key()
