"""Unit tests for the biased-by-design scoring functions (paper f6..f9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.population import Population
from repro.exceptions import ScoringError
from repro.marketplace.biased import (
    AttributeCondition,
    RuleBasedScoringFunction,
    ScoreRule,
    paper_biased_functions,
)


def _labels(population: Population, attribute: str) -> np.ndarray:
    attr = population.schema.protected_attribute(attribute)
    return np.array([attr.values[c] for c in population.protected_column(attribute)])


class TestAttributeCondition:
    def test_categorical_mask(self, paper_population_small: Population) -> None:
        condition = AttributeCondition("gender", labels=frozenset({"Male"}))
        mask = condition.mask(paper_population_small)
        assert (mask == (_labels(paper_population_small, "gender") == "Male")).all()

    def test_range_mask(self, paper_population_small: Population) -> None:
        condition = AttributeCondition("year_of_birth", value_range=(1950, 1979))
        mask = condition.mask(paper_population_small)
        years = paper_population_small.protected_column("year_of_birth")
        assert (mask == ((years >= 1950) & (years <= 1979))).all()

    def test_requires_exactly_one_of_labels_or_range(self) -> None:
        with pytest.raises(ScoringError, match="exactly one"):
            AttributeCondition("gender")
        with pytest.raises(ScoringError, match="exactly one"):
            AttributeCondition(
                "gender", labels=frozenset({"Male"}), value_range=(0, 1)
            )

    def test_labels_on_integer_attribute_rejected(
        self, paper_population_small: Population
    ) -> None:
        condition = AttributeCondition("year_of_birth", labels=frozenset({"1950"}))
        with pytest.raises(ScoringError, match="categorical"):
            condition.mask(paper_population_small)

    def test_range_on_categorical_attribute_rejected(
        self, paper_population_small: Population
    ) -> None:
        condition = AttributeCondition("gender", value_range=(0, 1))
        with pytest.raises(ScoringError, match="integer"):
            condition.mask(paper_population_small)

    def test_describe(self) -> None:
        assert "gender" in AttributeCondition("gender", labels=frozenset({"Male"})).describe()
        assert "[0, 5]" in AttributeCondition("x", value_range=(0, 5)).describe()


class TestScoreRule:
    def test_conjunction_of_conditions(self, paper_population_small: Population) -> None:
        rule = ScoreRule(
            (
                AttributeCondition("gender", labels=frozenset({"Female"})),
                AttributeCondition("country", labels=frozenset({"America"})),
            ),
            (0.8, 1.0),
        )
        mask = rule.mask(paper_population_small)
        genders = _labels(paper_population_small, "gender")
        countries = _labels(paper_population_small, "country")
        assert (mask == ((genders == "Female") & (countries == "America"))).all()

    def test_empty_conditions_match_everyone(
        self, paper_population_small: Population
    ) -> None:
        rule = ScoreRule((), (0.0, 1.0))
        assert rule.mask(paper_population_small).all()

    def test_invalid_score_range_rejected(self) -> None:
        with pytest.raises(ScoringError, match="0 <= low < high <= 1"):
            ScoreRule((), (0.5, 0.2))
        with pytest.raises(ScoringError, match="0 <= low < high <= 1"):
            ScoreRule((), (0.5, 1.2))


class TestRuleBasedScoringFunction:
    def test_scores_fall_in_matched_ranges(
        self, paper_population_small: Population
    ) -> None:
        f6 = paper_biased_functions()["f6"]
        scores = f6(paper_population_small)
        genders = _labels(paper_population_small, "gender")
        assert (scores[genders == "Male"] >= 0.8).all()
        assert (scores[genders == "Female"] <= 0.2).all()

    def test_first_match_wins(self, paper_population_small: Population) -> None:
        function = RuleBasedScoringFunction(
            "f",
            [
                ScoreRule(
                    (AttributeCondition("gender", labels=frozenset({"Male"})),),
                    (0.9, 1.0),
                ),
                # Overlapping later rule must not override the first.
                ScoreRule((), (0.0, 0.1)),
            ],
        )
        scores = function(paper_population_small)
        genders = _labels(paper_population_small, "gender")
        assert (scores[genders == "Male"] >= 0.9).all()
        assert (scores[genders == "Female"] <= 0.1).all()

    def test_default_range_for_unmatched(self, paper_population_small: Population) -> None:
        function = RuleBasedScoringFunction(
            "f",
            [
                ScoreRule(
                    (AttributeCondition("gender", labels=frozenset({"Female"})),),
                    (0.8, 1.0),
                )
            ],
            default_range=(0.4, 0.6),
        )
        scores = function(paper_population_small)
        genders = _labels(paper_population_small, "gender")
        males = scores[genders == "Male"]
        assert (males >= 0.4).all() and (males <= 0.6).all()

    def test_deterministic_given_seed(self, paper_population_small: Population) -> None:
        f7 = paper_biased_functions()["f7"]
        np.testing.assert_array_equal(
            f7(paper_population_small), f7(paper_population_small)
        )

    def test_needs_at_least_one_rule(self) -> None:
        with pytest.raises(ScoringError, match="at least one rule"):
            RuleBasedScoringFunction("f", [])

    def test_describe_lists_rules(self) -> None:
        f6 = paper_biased_functions()["f6"]
        text = f6.describe()
        assert text.startswith("f6:")
        assert "U(0.8, 1.0)" in text


class TestPaperBiasedFunctions:
    def test_four_functions(self) -> None:
        assert sorted(paper_biased_functions()) == ["f6", "f7", "f8", "f9"]

    def test_f7_score_bands(self, paper_population_small: Population) -> None:
        scores = paper_biased_functions()["f7"](paper_population_small)
        genders = _labels(paper_population_small, "gender")
        countries = _labels(paper_population_small, "country")
        assert (scores[(genders == "Male") & (countries == "America")] >= 0.8).all()
        assert (scores[(genders == "Female") & (countries == "America")] <= 0.2).all()
        indians = scores[countries == "India"]
        assert (indians >= 0.5).all() and (indians <= 0.7).all()
        assert (scores[(genders == "Female") & (countries == "Other")] >= 0.8).all()
        assert (scores[(genders == "Male") & (countries == "Other")] <= 0.2).all()

    def test_f8_score_bands(self, paper_population_small: Population) -> None:
        scores = paper_biased_functions()["f8"](paper_population_small)
        genders = _labels(paper_population_small, "gender")
        countries = _labels(paper_population_small, "country")
        assert (scores[(genders == "Female") & (countries == "America")] >= 0.8).all()
        f_india = scores[(genders == "Female") & (countries == "India")]
        assert (f_india >= 0.5).all() and (f_india <= 0.8).all()
        assert (scores[(genders == "Female") & (countries == "Other")] <= 0.2).all()

    def test_f9_correlates_with_planted_attributes(
        self, paper_population_small: Population
    ) -> None:
        scores = paper_biased_functions()["f9"](paper_population_small)
        ethnicities = _labels(paper_population_small, "ethnicity")
        white = scores[ethnicities == "White"]
        assert white.mean() > scores.mean()  # White workers scored higher by design

    def test_all_scores_in_unit_interval(
        self, paper_population_small: Population
    ) -> None:
        for function in paper_biased_functions().values():
            scores = function(paper_population_small)
            assert scores.min() >= 0.0 and scores.max() <= 1.0
