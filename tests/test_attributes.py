"""Unit tests for attribute specifications."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.attributes import (
    CategoricalAttribute,
    IntegerAttribute,
    ObservedAttribute,
)
from repro.exceptions import SchemaError


class TestCategoricalAttribute:
    def test_cardinality_counts_values(self) -> None:
        attr = CategoricalAttribute("gender", ("Male", "Female"))
        assert attr.cardinality == 2

    def test_encode_maps_labels_to_positions(self) -> None:
        attr = CategoricalAttribute("country", ("America", "India", "Other"))
        codes = attr.encode(["India", "America", "Other", "India"])
        assert codes.tolist() == [1, 0, 2, 1]

    def test_encode_rejects_unknown_label(self) -> None:
        attr = CategoricalAttribute("gender", ("Male", "Female"))
        with pytest.raises(SchemaError, match="not in the domain"):
            attr.encode(["Male", "Unknown"])

    def test_decode_round_trips_encode(self) -> None:
        attr = CategoricalAttribute("language", ("English", "Indian", "Other"))
        labels = ["Other", "English", "English", "Indian"]
        assert attr.decode(attr.encode(labels)) == labels

    def test_partition_codes_are_the_raw_codes(self) -> None:
        attr = CategoricalAttribute("gender", ("Male", "Female"))
        raw = np.array([1, 0, 1])
        assert attr.partition_codes(raw).tolist() == [1, 0, 1]

    def test_code_label_returns_value(self) -> None:
        attr = CategoricalAttribute("gender", ("Male", "Female"))
        assert attr.code_label(1) == "Female"

    def test_code_label_out_of_range(self) -> None:
        attr = CategoricalAttribute("gender", ("Male", "Female"))
        with pytest.raises(SchemaError, match="out of range"):
            attr.code_label(2)

    def test_validate_codes_rejects_out_of_domain(self) -> None:
        attr = CategoricalAttribute("gender", ("Male", "Female"))
        with pytest.raises(SchemaError, match="codes must lie"):
            attr.validate_codes(np.array([0, 3]))

    def test_rejects_single_value_domain(self) -> None:
        with pytest.raises(SchemaError, match="at least 2 values"):
            CategoricalAttribute("constant", ("only",))

    def test_rejects_duplicate_values(self) -> None:
        with pytest.raises(SchemaError, match="duplicate"):
            CategoricalAttribute("gender", ("Male", "Male"))

    def test_rejects_empty_name(self) -> None:
        with pytest.raises(SchemaError, match="non-empty"):
            CategoricalAttribute("", ("a", "b"))

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=50))
    def test_encode_decode_round_trip_property(self, labels: list[str]) -> None:
        attr = CategoricalAttribute("x", ("a", "b", "c"))
        assert attr.decode(attr.encode(labels)) == labels


class TestIntegerAttribute:
    def test_cardinality_is_bucket_count(self) -> None:
        attr = IntegerAttribute("year_of_birth", 1950, 2009, buckets=5)
        assert attr.cardinality == 5

    def test_partition_codes_cover_all_buckets(self) -> None:
        attr = IntegerAttribute("year_of_birth", 1950, 2009, buckets=5)
        values = np.arange(1950, 2010)
        codes = attr.partition_codes(values)
        assert set(codes.tolist()) == {0, 1, 2, 3, 4}

    def test_partition_codes_are_monotone_in_value(self) -> None:
        attr = IntegerAttribute("experience", 0, 30, buckets=5)
        codes = attr.partition_codes(np.arange(0, 31))
        assert all(a <= b for a, b in zip(codes, codes[1:]))

    def test_bucket_sizes_are_balanced(self) -> None:
        attr = IntegerAttribute("year_of_birth", 1950, 2009, buckets=5)
        codes = attr.partition_codes(np.arange(1950, 2010))
        counts = np.bincount(codes, minlength=5)
        assert counts.tolist() == [12, 12, 12, 12, 12]

    def test_low_and_high_map_to_first_and_last_bucket(self) -> None:
        attr = IntegerAttribute("experience", 0, 30, buckets=5)
        assert attr.partition_codes(np.array([0]))[0] == 0
        assert attr.partition_codes(np.array([30]))[0] == 4

    def test_code_label_is_an_integer_interval(self) -> None:
        attr = IntegerAttribute("year_of_birth", 1950, 2009, buckets=5)
        assert attr.code_label(0) == "1950-1961"
        assert attr.code_label(4) == "1998-2009"

    def test_labels_tile_the_whole_range(self) -> None:
        attr = IntegerAttribute("experience", 0, 30, buckets=4)
        previous_end = attr.low - 1
        for code in range(attr.buckets):
            start, end = (int(x) for x in attr.code_label(code).split("-"))
            assert start == previous_end + 1
            previous_end = end
        assert previous_end == attr.high

    def test_validate_codes_rejects_out_of_range(self) -> None:
        attr = IntegerAttribute("experience", 0, 30)
        with pytest.raises(SchemaError, match="values must lie"):
            attr.validate_codes(np.array([31]))

    def test_rejects_inverted_range(self) -> None:
        with pytest.raises(SchemaError, match="must exceed"):
            IntegerAttribute("bad", 10, 10)

    def test_rejects_more_buckets_than_values(self) -> None:
        with pytest.raises(SchemaError, match="buckets must be in"):
            IntegerAttribute("bad", 0, 2, buckets=4)

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=100))
    def test_every_value_gets_a_valid_bucket(self, buckets: int, offset: int) -> None:
        attr = IntegerAttribute("x", 0, 100, buckets=buckets)
        code = attr.partition_codes(np.array([offset]))[0]
        assert 0 <= code < buckets


class TestObservedAttribute:
    def test_normalize_maps_range_to_unit_interval(self) -> None:
        attr = ObservedAttribute("language_test", 25.0, 100.0)
        normalized = attr.normalize(np.array([25.0, 62.5, 100.0]))
        assert normalized.tolist() == [0.0, 0.5, 1.0]

    def test_denormalize_inverts_normalize(self) -> None:
        attr = ObservedAttribute("approval_rate", 25.0, 100.0)
        raw = np.array([25.0, 40.0, 77.3, 100.0])
        np.testing.assert_allclose(attr.denormalize(attr.normalize(raw)), raw)

    def test_validate_rejects_out_of_range(self) -> None:
        attr = ObservedAttribute("skill", 0.0, 1.0)
        with pytest.raises(SchemaError, match="values must lie"):
            attr.validate(np.array([1.5]))

    def test_validate_rejects_nan(self) -> None:
        attr = ObservedAttribute("skill", 0.0, 1.0)
        with pytest.raises(SchemaError, match="non-finite"):
            attr.validate(np.array([np.nan]))

    def test_rejects_empty_range(self) -> None:
        with pytest.raises(SchemaError, match="must exceed"):
            ObservedAttribute("bad", 1.0, 1.0)

    def test_empty_array_validates(self) -> None:
        ObservedAttribute("skill", 0.0, 1.0).validate(np.array([]))

    @given(
        st.lists(
            st.floats(min_value=25.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_normalized_values_stay_in_unit_interval(self, values: list[float]) -> None:
        attr = ObservedAttribute("x", 25.0, 100.0)
        normalized = attr.normalize(np.array(values))
        assert normalized.min() >= 0.0 and normalized.max() <= 1.0
