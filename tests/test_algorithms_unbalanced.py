"""Unit tests for the ``unbalanced`` algorithm (paper Algorithm 2) and its
random-attribute baseline ``r-unbalanced``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.algorithms.unbalanced import UnbalancedAlgorithm
from repro.core.population import Population
from repro.marketplace.biased import paper_biased_functions
from repro.simulation.generator import TOY_OPTIMAL_GROUPS


class TestUnbalanced:
    def test_returns_full_disjoint_partitioning(
        self, paper_population_small: Population
    ) -> None:
        scores = np.random.default_rng(0).uniform(size=paper_population_small.size)
        result = get_algorithm("unbalanced").run(paper_population_small, scores)
        assert result.partitioning.population_size == paper_population_small.size

    def test_recovers_figure1_optimum_on_toy(self, toy: Population) -> None:
        # The toy data is constructed so that the Figure 1 structure
        # {Male-English, Male-Indian, Male-Other, Female} is optimal and
        # reachable by local greedy decisions.
        scores = toy.observed_column("qualification")
        result = get_algorithm("unbalanced").run(toy, scores)
        labels = sorted(p.label(toy.schema) for p in result.partitioning)
        assert labels == sorted(TOY_OPTIMAL_GROUPS)

    def test_produces_unbalanced_tree_on_toy(self, toy: Population) -> None:
        scores = toy.observed_column("qualification")
        result = get_algorithm("unbalanced").run(toy, scores)
        depths = {len(p.constraints) for p in result.partitioning}
        assert depths == {1, 2}  # female leaf at depth 1, male leaves at 2

    def test_balanced_cannot_express_toy_optimum(self, toy: Population) -> None:
        # Structural contrast motivating Algorithm 2: balanced must split
        # every partition on the same attributes, so it cannot keep Female
        # whole while splitting Male by language.
        scores = toy.observed_column("qualification")
        unbalanced = get_algorithm("unbalanced").run(toy, scores)
        balanced = get_algorithm("balanced").run(toy, scores)
        assert unbalanced.unfairness > balanced.unfairness

    def test_constant_scores_stop_immediately(
        self, small_population: Population
    ) -> None:
        scores = np.full(small_population.size, 0.25)
        result = get_algorithm("unbalanced").run(small_population, scores)
        assert result.unfairness == 0.0

    def test_cross_only_stopping_variant_runs(
        self, paper_population_small: Population
    ) -> None:
        scores = paper_biased_functions()["f7"](paper_population_small)
        union = UnbalancedAlgorithm(cross_only=False).run(paper_population_small, scores)
        cross = UnbalancedAlgorithm(cross_only=True).run(paper_population_small, scores)
        for result in (union, cross):
            assert result.partitioning.population_size == paper_population_small.size
        # Both must still identify the planted attributes.
        assert set(union.partitioning.attributes_used()) <= {"gender", "country"}

    def test_deterministic_across_runs(self, paper_population_small: Population) -> None:
        scores = np.random.default_rng(5).uniform(size=paper_population_small.size)
        first = get_algorithm("unbalanced").run(paper_population_small, scores)
        second = get_algorithm("unbalanced").run(paper_population_small, scores)
        assert first.partitioning.canonical_key() == second.partitioning.canonical_key()

    def test_attributes_never_repeat_on_a_path(
        self, paper_population_small: Population
    ) -> None:
        scores = np.random.default_rng(6).uniform(size=paper_population_small.size)
        result = get_algorithm("unbalanced").run(paper_population_small, scores)
        for partition in result.partitioning:
            attrs = partition.constrained_attributes()
            assert len(attrs) == len(set(attrs))


class TestRandomUnbalanced:
    def test_full_disjoint_partitioning(
        self, paper_population_small: Population
    ) -> None:
        scores = np.random.default_rng(7).uniform(size=paper_population_small.size)
        result = get_algorithm("r-unbalanced").run(paper_population_small, scores, rng=1)
        assert result.partitioning.population_size == paper_population_small.size

    def test_same_seed_same_result(self, paper_population_small: Population) -> None:
        scores = np.random.default_rng(8).uniform(size=paper_population_small.size)
        algorithm = get_algorithm("r-unbalanced")
        first = algorithm.run(paper_population_small, scores, rng=3)
        second = algorithm.run(paper_population_small, scores, rng=3)
        assert first.partitioning.canonical_key() == second.partitioning.canonical_key()

    def test_local_stopping_rule_still_applies(
        self, small_population: Population
    ) -> None:
        scores = np.full(small_population.size, 0.75)
        result = get_algorithm("r-unbalanced").run(small_population, scores, rng=0)
        assert result.unfairness == 0.0
