"""Cooperative deadlines: partial-result prefix identity at the cutoff.

The contract (``docs/service.md``): a deadline never changes *what* an
iteration computes, only whether the next one starts.  So a run cut at
iteration boundary *n* must return exactly what an unbounded run had
produced by boundary *n* — same partitions, same tie-breaks, bit-identical.
These tests pin that down with :class:`StepDeadline` (expires after a fixed
number of polls, machine-independent) in three ways:

* for the greedy algorithms, the cutoff result is reconstructed manually
  from the same primitives (``worst_attribute`` / ``split_partitions``) and
  compared index-for-index;
* for every algorithm, a huge step budget must be bit-identical to a run
  with no deadline at all (the polling itself must not perturb anything);
* for the randomised algorithms, polling happens *before* each rng draw,
  so a cutoff run's draw sequence is a prefix of the unbounded run's.
"""

from __future__ import annotations

import pytest

from repro.core.algorithms import get_algorithm
from repro.core.partition import Partition
from repro.core.splitting import split_partitions, worst_attribute
from repro.engine.deadline import Deadline, StepDeadline
from repro.engine.engine import EvaluationEngine
from repro.exceptions import DeadlineExceededError
from repro.simulation.scenarios import figure1_scenario

ALL_ALGORITHMS = (
    "balanced",
    "unbalanced",
    "r-balanced",
    "r-unbalanced",
    "exhaustive",
    "beam",
    "all-attributes",
    "single-attribute",
)


@pytest.fixture(scope="module")
def scenario():
    return figure1_scenario()


@pytest.fixture(scope="module")
def scores(scenario):
    return scenario.functions["f"](scenario.population)


def _indices(result):
    """Partition membership as comparable tuples (order-sensitive)."""
    return [tuple(p.indices.tolist()) for p in result.partitioning]


class TestDeadlineClock:
    def test_not_expired_before_budget(self):
        now = [0.0]
        deadline = Deadline(10.0, clock=lambda: now[0])
        assert not deadline.expired()
        assert deadline.remaining() == 10.0

    def test_expires_exactly_at_budget(self):
        now = [0.0]
        deadline = Deadline(10.0, clock=lambda: now[0])
        now[0] = 10.0
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_raise_if_expired(self):
        now = [0.0]
        deadline = Deadline(1.0, clock=lambda: now[0])
        deadline.raise_if_expired()  # not yet
        now[0] = 2.0
        with pytest.raises(DeadlineExceededError):
            deadline.raise_if_expired()

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)

    def test_step_deadline_counts_polls(self):
        deadline = StepDeadline(3)
        assert not deadline.expired()
        assert not deadline.expired()
        assert deadline.expired()
        assert deadline.expired()  # monotone


class TestPartialResultPrefix:
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_first_poll_cutoff_returns_flagged_root(self, scenario, scores, name):
        """StepDeadline(1) stops every algorithm before any split."""
        result = get_algorithm(name).run(
            scenario.population, scores, rng=0, deadline=StepDeadline(1)
        )
        assert result.deadline_hit
        assert result.partitioning.k == 1
        assert "deadline" in result.describe(scenario.population.schema)

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_huge_budget_is_bit_identical_to_unbounded(self, scenario, scores, name):
        """Polling alone never perturbs the search."""
        unbounded = get_algorithm(name).run(scenario.population, scores, rng=0)
        bounded = get_algorithm(name).run(
            scenario.population, scores, rng=0, deadline=StepDeadline(10**9)
        )
        assert not bounded.deadline_hit
        assert _indices(bounded) == _indices(unbounded)
        assert bounded.unfairness == unbounded.unfairness

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_cutoff_runs_are_deterministic(self, scenario, scores, name):
        """The same cutoff twice gives the same partial result."""
        first = get_algorithm(name).run(
            scenario.population, scores, rng=0, deadline=StepDeadline(2)
        )
        second = get_algorithm(name).run(
            scenario.population, scores, rng=0, deadline=StepDeadline(2)
        )
        assert _indices(first) == _indices(second)
        assert first.unfairness == second.unfairness

    def test_balanced_cutoff_equals_manual_first_iteration(self, scenario, scores):
        """StepDeadline(2) lets exactly the initial split through; the result
        must be index-identical to that split computed by hand."""
        population = scenario.population
        result = get_algorithm("balanced").run(
            population, scores, deadline=StepDeadline(2)
        )
        assert result.deadline_hit
        engine = EvaluationEngine(population, scores, scenario.hist_spec)
        expected = worst_attribute(
            population,
            [Partition(population.all_indices())],
            list(population.schema.protected_names),
            engine,
        ).children
        assert _indices(result) == [tuple(p.indices.tolist()) for p in expected]

    def test_all_attributes_cutoff_equals_first_level_split(self, scenario, scores):
        """StepDeadline(2) cuts the baseline after splitting on the first
        protected attribute only."""
        population = scenario.population
        result = get_algorithm("all-attributes").run(
            population, scores, deadline=StepDeadline(2)
        )
        assert result.deadline_hit
        first_attribute = population.schema.protected_names[0]
        expected = split_partitions(
            population, [Partition(population.all_indices())], first_attribute
        )
        assert _indices(result) == [tuple(p.indices.tolist()) for p in expected]

    def test_randomised_cutoff_draws_are_a_prefix(self, scenario, scores):
        """r-balanced polls *before* each rng draw, so the cutoff run and
        the unbounded run make identical draws up to the cutoff — the
        partial partitioning appears verbatim inside the unbounded trace."""
        import numpy as np

        population = scenario.population
        cut = get_algorithm("r-balanced").run(
            population,
            scores,
            rng=np.random.default_rng(7),
            deadline=StepDeadline(2),
        )
        full = get_algorithm("r-balanced").run(
            population, scores, rng=np.random.default_rng(7)
        )
        assert cut.deadline_hit
        # Every cutoff leaf is either a leaf of the full run or an ancestor
        # of one (the full run only ever splits partitions further).
        full_leaves = {tuple(p.indices.tolist()) for p in full.partitioning}
        for leaf in _indices(cut):
            members = set(leaf)
            assert any(set(f) <= members for f in full_leaves)


class TestDeadlineThroughRunner:
    def test_run_scenario_flags_partial_rows(self, scenario):
        from repro.simulation.runner import run_scenario

        result = run_scenario(
            scenario, algorithms=("balanced",), seed=0, deadline=StepDeadline(1)
        )
        assert all(row.deadline_hit for row in result.rows)

    def test_run_scenario_without_deadline_unflagged(self, scenario):
        from repro.simulation.runner import run_scenario

        result = run_scenario(scenario, algorithms=("balanced",), seed=0)
        assert not any(row.deadline_hit for row in result.rows)

    def test_deadline_hits_counted_in_metrics(self, scenario, scores):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        get_algorithm("balanced").run(
            scenario.population,
            scores,
            metrics=metrics,
            deadline=StepDeadline(1),
        )
        assert metrics.counter("search.deadline_hits") == 1
