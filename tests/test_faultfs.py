"""Tests for the injectable filesystem fault plane (repro.io.faultfs)."""

from __future__ import annotations

import errno
import io
import os

import pytest

from repro.io import faultfs
from repro.io.atomic import atomic_write_bytes, atomic_write_text
from repro.io.faultfs import (
    CrashPointRegistry,
    DiskFaultConfig,
    FaultPlane,
    seeded_roll,
)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _no_leaked_plane():
    yield
    faultfs.uninstall()


# ----------------------------------------------------------------- schedule


def test_seeded_roll_is_deterministic():
    draws = [seeded_roll(7, "eio", f"journal:write-{i}", 0.3) for i in range(200)]
    again = [seeded_roll(7, "eio", f"journal:write-{i}", 0.3) for i in range(200)]
    assert draws == again
    assert any(draws) and not all(draws)


def test_seeded_roll_varies_with_seed_and_kind():
    keys = [f"k-{i}" for i in range(500)]
    a = [seeded_roll(1, "eio", k, 0.2) for k in keys]
    b = [seeded_roll(2, "eio", k, 0.2) for k in keys]
    c = [seeded_roll(1, "enospc", k, 0.2) for k in keys]
    assert a != b
    assert a != c


def test_zero_rate_never_fires():
    assert not any(seeded_roll(9, "torn", f"k-{i}", 0.0) for i in range(1000))


def test_rate_one_always_fires():
    assert all(seeded_roll(9, "torn", f"k-{i}", 1.0) for i in range(100))


# ------------------------------------------------------------------- config


def test_disk_config_validates_rates():
    with pytest.raises(ValueError):
        DiskFaultConfig(eio_rate=1.5)
    with pytest.raises(ValueError):
        DiskFaultConfig(slow_seconds=-1)


def test_disk_config_parse_round_trip():
    config = DiskFaultConfig.parse("enospc=0.1,fsync=0.2,slow-seconds=0.5,seed=3")
    assert config.enospc_rate == 0.1
    assert config.fsync_rate == 0.2
    assert config.slow_seconds == 0.5
    assert config.seed == 3
    assert config.enabled


def test_disk_config_parse_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown disk fault"):
        DiskFaultConfig.parse("sparks=0.5")
    with pytest.raises(ValueError, match="key=value"):
        DiskFaultConfig.parse("enospc")


def test_disabled_when_all_rates_zero():
    assert not DiskFaultConfig().enabled
    assert DiskFaultConfig(torn_rate=0.01).enabled


# -------------------------------------------------------------------- plane


def test_passthrough_without_plane(tmp_path):
    path = tmp_path / "plain.txt"
    with open(path, "w") as handle:
        faultfs.write(handle, "hello", label="plain")
        faultfs.fsync(handle.fileno(), label="plain")
    assert path.read_text() == "hello"


def test_enospc_injection_writes_nothing():
    plane = FaultPlane(DiskFaultConfig(enospc_rate=1.0, seed=1))
    buffer = io.StringIO()
    with pytest.raises(OSError) as excinfo:
        plane.write(buffer, "payload", label="test")
    assert excinfo.value.errno == errno.ENOSPC
    assert buffer.getvalue() == ""


def test_torn_injection_writes_a_strict_prefix():
    plane = FaultPlane(DiskFaultConfig(torn_rate=1.0, seed=1))
    buffer = io.StringIO()
    with pytest.raises(OSError) as excinfo:
        plane.write(buffer, "0123456789", label="test")
    assert excinfo.value.errno == errno.EIO
    written = buffer.getvalue()
    assert 0 < len(written) < 10
    assert "0123456789".startswith(written)


def test_fsync_injection_raises_eio(tmp_path):
    plane = FaultPlane(DiskFaultConfig(fsync_rate=1.0, seed=1))
    with open(tmp_path / "f", "w") as handle:
        with pytest.raises(OSError) as excinfo:
            plane.fsync(handle.fileno(), label="test")
    assert excinfo.value.errno == errno.EIO


def test_faults_are_transient_per_operation_counter():
    # A fresh key per operation means a partial rate eventually passes —
    # the degraded-mode probe loop relies on exactly this.
    plane = FaultPlane(DiskFaultConfig(eio_rate=0.5, seed=11))
    outcomes = []
    for _ in range(50):
        buffer = io.StringIO()
        try:
            plane.write(buffer, "x", label="probe")
        except OSError:
            outcomes.append(False)
        else:
            outcomes.append(True)
    assert any(outcomes) and not all(outcomes)


def test_plane_counts_fired_faults_into_metrics():
    metrics = MetricsRegistry()
    plane = FaultPlane(DiskFaultConfig(eio_rate=1.0, seed=1), metrics=metrics)
    with pytest.raises(OSError):
        plane.write(io.StringIO(), "x", label="test")
    snapshot = metrics.as_dict()["counters"]
    assert snapshot["chaos.faults_injected"] == 1
    assert snapshot["chaos.disk_eio"] == 1


def test_install_uninstall_routing(tmp_path):
    plane = FaultPlane(DiskFaultConfig(eio_rate=1.0, seed=1))
    faultfs.install(plane)
    assert faultfs.active() is plane
    with open(tmp_path / "f", "w") as handle:
        with pytest.raises(OSError):
            faultfs.write(handle, "x", label="test")
    faultfs.uninstall()
    assert faultfs.active() is None
    with open(tmp_path / "f", "w") as handle:
        faultfs.write(handle, "x", label="test")


def test_atomic_write_survives_transient_faults(tmp_path):
    # atomic_write_* goes through the plane: with a partial fault rate the
    # target is either absent or complete, never torn.
    faultfs.install(FaultPlane(DiskFaultConfig(torn_rate=0.4, eio_rate=0.2, seed=5)))
    path = tmp_path / "out.json"
    wrote = 0
    for attempt in range(30):
        try:
            atomic_write_text(path, f"payload-{attempt}")
        except OSError:
            continue
        wrote += 1
        assert path.read_text() == f"payload-{attempt}"
    assert wrote > 0
    leftovers = [p for p in tmp_path.iterdir() if p.name != "out.json"]
    assert leftovers == []


def test_atomic_write_bytes_under_enospc(tmp_path):
    faultfs.install(FaultPlane(DiskFaultConfig(enospc_rate=1.0, seed=5)))
    with pytest.raises(OSError):
        atomic_write_bytes(tmp_path / "never.bin", b"data")
    faultfs.uninstall()
    assert not (tmp_path / "never.bin").exists()


# ------------------------------------------------------------- crash points


def test_crash_registry_counts_without_arming():
    registry = CrashPointRegistry(environ={})
    registry.hit("journal.sync.before_fsync")
    registry.hit("journal.sync.before_fsync")
    assert registry.seen["journal.sync.before_fsync"] == 2
    assert registry.armed is None


def test_crash_registry_arms_from_environment():
    registry = CrashPointRegistry(
        environ={
            faultfs.ENV_CRASH_POINT: "snapshot.before_replace",
            faultfs.ENV_CRASH_POINT_SKIP: "2",
        }
    )
    assert registry.armed == "snapshot.before_replace"
    assert registry.skip == 2
    # Two skipped crossings survive; a third would _exit (not tested
    # in-process — the torture harness covers the kill in a subprocess).
    registry.hit("snapshot.before_replace")
    registry.hit("snapshot.before_replace")
    assert registry.skip == 0


def test_crash_registry_ignores_other_points():
    registry = CrashPointRegistry(environ={faultfs.ENV_CRASH_POINT: "a.b"})
    registry.hit("c.d")  # would _exit if name matched
    assert registry.seen == {"c.d": 1}


def test_crash_point_exit_code_is_distinctive():
    assert faultfs.CRASH_EXIT_CODE == 86
    assert faultfs.CRASH_EXIT_CODE not in (0, 1, 2)
    assert os.WEXITSTATUS(faultfs.CRASH_EXIT_CODE << 8) == 86
