"""Streaming audits: mutation log, incremental atoms, O(Δ) re-scoring.

The load-bearing property throughout: after ANY interleaving of
add/remove/update_score mutations, a streaming re-audit is bit-identical —
same unfairness float, same groups, same true group sizes — to a fresh
batch audit of the frozen final population.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partition import Partition, Partitioning
from repro.core.population import Population
from repro.engine.atoms import AtomTable, decode_keys, encode_codes, protected_cards
from repro.engine.engine import EvaluationEngine
from repro.engine.faults import FaultConfig
from repro.engine.resilience import RetryPolicy
from repro.engine.streaming import (
    MutableAtomState,
    StreamingAuditor,
    StreamingEngine,
    proxy_population,
)
from repro.exceptions import MutationError, PartitioningError, PopulationError
from repro.marketplace.streaming import (
    MUTATIONS_SCHEMA,
    Mutation,
    MutablePopulation,
    random_mutation_mix,
    read_mutation_stream,
    write_mutation_stream,
)
# Shared with the parity harness; see tests/parity/conftest.py for the
# single definitions of the store builders and table helpers.
from tests.parity.conftest import batch_audit, mutate, small_store


class TestMutablePopulationValidation:
    def test_duplicate_worker_ids_rejected_at_construction(self) -> None:
        store = small_store()
        population, scores = store.to_population()
        ids = np.zeros(population.size, dtype=np.int64)
        with pytest.raises(MutationError, match="duplicate worker ids"):
            MutablePopulation.from_population(
                population, scores, hist_spec=store.hist_spec, ids=ids
            )

    def test_non_finite_scores_rejected_at_construction(self) -> None:
        store = small_store()
        population, scores = store.to_population()
        scores = scores.copy()
        scores[3] = np.nan
        with pytest.raises(MutationError):
            MutablePopulation.from_population(
                population, scores, hist_spec=store.hist_spec
            )

    def test_add_validates_before_mutating(self) -> None:
        store = small_store()
        before = store.state_digest()
        with pytest.raises(MutationError):
            store.add(score=float("inf"), protected=self._protected(store))
        with pytest.raises(MutationError):
            store.add(score=0.5, protected={"nope": 0})
        assert store.state_digest() == before

    def test_duplicate_add_and_unknown_remove(self) -> None:
        store = small_store()
        wid = int(store.worker_ids()[0])
        with pytest.raises(MutationError):
            store.add(score=0.5, protected=self._protected(store), worker_id=wid)
        with pytest.raises(MutationError):
            store.remove(worker_id=10**9)

    def test_score_out_of_histogram_range_rejected(self) -> None:
        store = small_store()
        wid = int(store.worker_ids()[0])
        with pytest.raises(MutationError):
            store.update_score(wid, store.hist_spec.high + 1.0)

    @staticmethod
    def _protected(store: MutablePopulation) -> dict:
        values = {}
        population, _ = store.to_population()
        for attr in population.schema.protected:
            values[attr.name] = population.protected_column(attr.name)[0]
        return values

    def test_mutation_kind_payload_validation(self) -> None:
        with pytest.raises(MutationError):
            Mutation(kind="warp")
        with pytest.raises(MutationError):
            Mutation(kind="remove")  # no worker_id
        with pytest.raises(MutationError):
            Mutation(kind="update_score", worker_id=1)  # no score
        with pytest.raises(MutationError):
            Mutation(kind="add")  # no attributes
        with pytest.raises(MutationError):
            Mutation(kind="remove", worker_id=True)

    def test_numpy_integer_worker_ids_accepted(self) -> None:
        store = small_store()
        wid = store.worker_ids()[0]  # np.int64
        store.update_score(wid, 0.5)
        assert store.score_of(int(wid)) == 0.5


class TestMutationStream:
    def test_round_trip(self, tmp_path) -> None:
        store = small_store()
        mutations = random_mutation_mix(store, np.random.default_rng(5), 40)
        path = tmp_path / "mutations.jsonl"
        write_mutation_stream(path, mutations)
        loaded = read_mutation_stream(path)
        assert loaded == list(mutations)

    def test_state_round_trip_preserves_digest(self) -> None:
        store = small_store()
        mutate(store, seed=9, count=60)
        payload = store.state_payload()
        population, _ = store.to_population()
        clone = MutablePopulation.from_state_payload(
            population.schema, payload, store.hist_spec
        )
        assert clone.state_digest() == store.state_digest()
        assert clone.next_id == store.next_id
        # Replay continues identically on both copies.
        for twin in (store, clone):
            mutate(twin, seed=10, count=20)
        assert clone.state_digest() == store.state_digest()


class TestAtomStateMaintenance:
    def test_mixed_radix_round_trip(self) -> None:
        cards = (3, 4, 5)
        rng = np.random.default_rng(0)
        codes = np.column_stack(
            [rng.integers(c, size=50) for c in cards]
        ).astype(np.int64)
        keys = np.array(
            [encode_codes(row, cards) for row in codes], dtype=np.int64
        )
        assert np.array_equal(decode_keys(keys, cards), codes)

    def test_incremental_state_matches_bulk_build(self) -> None:
        store = small_store()
        state = MutableAtomState.from_store(store)
        mutate(store, seed=3, count=200)
        for applied in store.log_since(state.version):
            state.apply(applied)
        population, scores = store.to_population()
        built = AtomTable.build(
            population, store.hist_spec.bin_indices(scores), store.hist_spec.bins
        )
        table = state.materialize()
        assert np.array_equal(built.counts, table.counts)
        assert np.array_equal(built.codes, table.codes)
        assert int(table.counts.sum()) == store.size

    def test_underflow_raises(self) -> None:
        store = small_store()
        state = MutableAtomState.from_store(store)
        applied = store.log_since(0)
        assert applied == []
        wid = int(store.worker_ids()[0])
        store.remove(wid)
        (removal,) = store.log_since(0)
        state.apply(removal)
        with pytest.raises(MutationError, match="underflow"):
            state.apply(removal)


class TestProxyPopulation:
    def test_proxy_rows_are_atoms(self) -> None:
        store = small_store()
        population, scores = store.to_population()
        table = AtomTable.build(
            population, store.hist_spec.bin_indices(scores), store.hist_spec.bins
        )
        proxy = proxy_population(population.schema, table)
        assert proxy.size == table.n_atoms
        for column, name in enumerate(
            a.name for a in population.schema.protected
        ):
            assert np.array_equal(
                proxy.partition_codes(name), table.codes[:, column]
            )


class TestStreamingBitIdentity:
    # The full interleaving × algorithm × metric bit-identity matrix and
    # the size-weighting case moved to tests/parity/test_streaming_parity.py.

    def test_remove_all_but_a_few(self) -> None:
        store = small_store(seed=3, n_workers=60)
        keep = 4
        for wid in store.worker_ids()[keep:]:
            store.remove(int(wid))
        auditor = StreamingAuditor(store, seed=0)
        try:
            report = auditor.audit()
            result = batch_audit(store)
            assert report.unfairness == result.unfairness
            assert store.size == keep
        finally:
            auditor.close()

    def test_empty_population_refuses_audit(self) -> None:
        store = small_store(seed=4, n_workers=10)
        for wid in store.worker_ids():
            store.remove(int(wid))
        auditor = StreamingAuditor(store, seed=0)
        try:
            with pytest.raises(MutationError):
                auditor.audit()
        finally:
            auditor.close()

    def test_process_backend_with_fault_injection(self) -> None:
        store = small_store(seed=5)
        mutate(store, seed=41, count=80)
        policy = RetryPolicy(max_retries=4, backoff_seconds=0.0)
        faults = FaultConfig(crash_rate=0.05, seed=7)
        auditor = StreamingAuditor(
            store,
            algorithm="balanced",
            metric="emd",
            backend="process",
            workers=2,
            seed=0,
            retry_policy=policy,
            fault_config=faults,
        )
        try:
            report = auditor.audit()
            result = batch_audit(store, backend="process", workers=2)
            assert report.unfairness == result.unfairness
        finally:
            auditor.close()

    def test_pool_republishes_only_when_dirty(self) -> None:
        store = small_store(seed=6)
        auditor = StreamingAuditor(
            store, backend="process", workers=2, seed=0
        )
        try:
            auditor.audit()
            version = auditor._engine.atom_version
            auditor.audit()  # no mutations in between
            assert auditor._engine.atom_version == version
            store.update_score(int(store.worker_ids()[0]), 0.25)
            auditor.audit()
            assert auditor._engine.atom_version == version + 1
        finally:
            auditor.close()


class TestDeltaRescoring:
    def test_update_only_delta_matches_direct_evaluation(self) -> None:
        store = small_store(seed=7)
        auditor = StreamingAuditor(store, seed=0)
        try:
            baseline = auditor.audit()
            mutate(store, seed=51, count=25, weights=(0.0, 0.0, 1.0))
            delta = auditor.rescore_delta()
            assert delta is not None and not delta.stale
            assert delta.kind == "delta"
            assert delta.population_size == store.size
            # Re-evaluate the frozen partitioning on the final population.
            population, scores = store.to_population()
            engine = EvaluationEngine(
                population, scores, hist_spec=store.hist_spec, metric="emd"
            )
            partitions = []
            for constraints in baseline.groups:
                mask = np.ones(population.size, dtype=bool)
                for name, code in constraints:
                    mask &= population.partition_codes(name) == code
                partitions.append(
                    Partition(np.nonzero(mask)[0], tuple(constraints))
                )
            expected = engine.unfairness(
                Partitioning(partitions, population.size)
            )
            engine.close()
            assert delta.unfairness == pytest.approx(expected, abs=1e-12)
        finally:
            auditor.close()

    def test_unseen_code_combination_marks_stale(self) -> None:
        store = small_store(seed=8)
        auditor = StreamingAuditor(store, seed=0)
        try:
            auditor.audit()
            # Adds can introduce code combinations outside every frontier
            # group; keep adding until the frontier gives up.
            stale = False
            for seed in range(60, 75):
                mutate(store, seed=seed, count=10, weights=(1.0, 0.0, 0.0))
                delta = auditor.rescore_delta()
                assert delta is not None
                if delta.stale:
                    stale = True
                    break
            assert stale, "adds never left the audited frontier"
            # A full audit clears staleness and is again bit-identical.
            report = auditor.audit()
            result = batch_audit(store)
            assert report.unfairness == result.unfairness
        finally:
            auditor.close()

    def test_delta_before_any_audit_is_none(self) -> None:
        store = small_store(seed=9)
        auditor = StreamingAuditor(store, seed=0)
        try:
            assert auditor.rescore_delta() is None
        finally:
            auditor.close()


class TestStreamingEngineGuards:
    def test_full_mode_rejected(self) -> None:
        store = small_store()
        population, scores = store.to_population()
        table = AtomTable.build(
            population, store.hist_spec.bin_indices(scores), store.hist_spec.bins
        )
        proxy = proxy_population(population.schema, table)
        proxy_scores = np.full(proxy.size, store.hist_spec.low)
        with pytest.raises(PartitioningError):
            StreamingEngine(
                proxy,
                proxy_scores,
                table=table,
                hist_spec=store.hist_spec,
                mode="full",
            )

    def test_rebind_size_mismatch_rejected(self) -> None:
        store = small_store()
        population, scores = store.to_population()
        table = AtomTable.build(
            population, store.hist_spec.bin_indices(scores), store.hist_spec.bins
        )
        proxy = proxy_population(population.schema, table)
        proxy_scores = np.full(proxy.size, store.hist_spec.low)
        engine = StreamingEngine(
            proxy, proxy_scores, table=table, hist_spec=store.hist_spec
        )
        try:
            with pytest.raises(PartitioningError):
                engine.rebind(population, scores, table)
        finally:
            engine.shutdown()


class TestSubsetDuplicateBugfix:
    def test_duplicate_subset_indices_rejected(self) -> None:
        store = small_store()
        population, _ = store.to_population()
        with pytest.raises(PopulationError, match="duplicate"):
            population.subset(np.array([0, 1, 1]))
