"""Unit tests for ranking-exposure metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.population import Population
from repro.exceptions import ScoringError
from repro.marketplace.biased import paper_biased_functions
from repro.marketplace.exposure import (
    exposure_disparity,
    group_exposure,
    position_exposure,
    top_k_representation,
)
from repro.marketplace.ranking import rank_workers
from repro.marketplace.scoring import LinearScoringFunction, paper_functions


class TestPositionExposure:
    def test_dcg_discount_values(self) -> None:
        exposure = position_exposure(3)
        np.testing.assert_allclose(
            exposure, [1.0, 1.0 / np.log2(3), 0.5], rtol=1e-12
        )

    def test_monotone_decreasing(self) -> None:
        exposure = position_exposure(50)
        assert all(a > b for a, b in zip(exposure, exposure[1:]))

    def test_zero_length(self) -> None:
        assert position_exposure(0).size == 0

    def test_negative_length_rejected(self) -> None:
        with pytest.raises(ScoringError, match="non-negative"):
            position_exposure(-1)


class TestGroupExposure:
    def test_biased_function_skews_exposure(
        self, paper_population_small: Population
    ) -> None:
        ranking = rank_workers(paper_population_small, paper_biased_functions()["f6"])
        exposure = group_exposure(ranking, paper_population_small, "gender")
        assert exposure["Male"] > exposure["Female"]

    def test_unbiased_function_near_parity(
        self, paper_population_small: Population
    ) -> None:
        ranking = rank_workers(paper_population_small, paper_functions()["f1"])
        disparity = exposure_disparity(ranking, paper_population_small, "gender")
        assert disparity > 0.8  # random scores: roughly equal exposure

    def test_biased_disparity_below_unbiased(
        self, paper_population_small: Population
    ) -> None:
        biased_rank = rank_workers(paper_population_small, paper_biased_functions()["f6"])
        fair_rank = rank_workers(paper_population_small, paper_functions()["f1"])
        assert exposure_disparity(
            biased_rank, paper_population_small, "gender"
        ) < exposure_disparity(fair_rank, paper_population_small, "gender")

    def test_integer_attribute_grouped_by_bucket(
        self, paper_population_small: Population
    ) -> None:
        ranking = rank_workers(paper_population_small, paper_functions()["f1"])
        exposure = group_exposure(ranking, paper_population_small, "year_of_birth")
        assert len(exposure) == 5
        assert all(label.startswith("[") for label in exposure)


class TestTopKRepresentation:
    def test_biased_function_shuts_group_out(
        self, paper_population_small: Population
    ) -> None:
        # f6 scores every male above every female, so the top 20 are all male.
        ranking = rank_workers(paper_population_small, paper_biased_functions()["f6"])
        representation = top_k_representation(
            ranking, paper_population_small, "gender", k=20
        )
        assert representation["Female"] == 0.0
        assert representation["Male"] > 1.0

    def test_k_must_be_positive(self, paper_population_small: Population) -> None:
        ranking = rank_workers(paper_population_small, paper_functions()["f1"])
        with pytest.raises(ScoringError, match=">= 1"):
            top_k_representation(ranking, paper_population_small, "gender", k=0)

    def test_proportional_for_full_list(
        self, paper_population_small: Population
    ) -> None:
        ranking = rank_workers(paper_population_small, paper_functions()["f1"])
        representation = top_k_representation(
            ranking, paper_population_small, "gender", k=paper_population_small.size
        )
        for ratio in representation.values():
            assert ratio == pytest.approx(1.0)
