"""Unit tests for the unfairness objective (Definition 2 of the paper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.histogram import HistogramSpec
from repro.core.partition import Partition, Partitioning
from repro.core.population import Population
from repro.core.unfairness import UnfairnessEvaluator, unfairness
from repro.exceptions import PartitioningError
from repro.metrics.emd import emd


@pytest.fixture()
def evaluator(small_population: Population) -> UnfairnessEvaluator:
    scores = small_population.observed_column("skill")
    return UnfairnessEvaluator(small_population, scores, HistogramSpec(bins=10))


class TestEvaluatorBasics:
    def test_rejects_score_shape_mismatch(self, small_population: Population) -> None:
        with pytest.raises(PartitioningError, match="expected"):
            UnfairnessEvaluator(small_population, np.array([0.5, 0.5]))

    def test_pmf_matches_direct_histogram(
        self, small_population: Population, evaluator: UnfairnessEvaluator
    ) -> None:
        partition = Partition(np.arange(6))
        scores = small_population.observed_column("skill")[:6]
        expected = HistogramSpec(bins=10).normalized_histogram(scores)
        np.testing.assert_allclose(evaluator.pmf(partition), expected)

    def test_pmf_is_cached_per_partition_object(
        self, evaluator: UnfairnessEvaluator
    ) -> None:
        partition = Partition(np.arange(3))
        assert evaluator.pmf(partition) is evaluator.pmf(partition)

    def test_pmf_matrix_shape(self, evaluator: UnfairnessEvaluator) -> None:
        parts = [Partition(np.arange(6)), Partition(np.arange(6, 12))]
        assert evaluator.pmf_matrix(parts).shape == (2, 10)

    def test_pmf_matrix_empty(self, evaluator: UnfairnessEvaluator) -> None:
        assert evaluator.pmf_matrix([]).shape == (0, 10)


class TestObjective:
    def test_single_partition_unfairness_is_zero(
        self, small_population: Population, evaluator: UnfairnessEvaluator
    ) -> None:
        assert evaluator.unfairness(Partitioning.single(small_population)) == 0.0

    def test_two_partitions_equals_their_emd(
        self, small_population: Population, evaluator: UnfairnessEvaluator
    ) -> None:
        males, females = Partition(np.arange(6)), Partition(np.arange(6, 12))
        expected = emd(evaluator.pmf(males), evaluator.pmf(females), 0.1)
        assert evaluator.unfairness([males, females]) == pytest.approx(expected)

    def test_average_over_three_partitions(
        self, evaluator: UnfairnessEvaluator
    ) -> None:
        parts = [
            Partition(np.arange(4)),
            Partition(np.arange(4, 8)),
            Partition(np.arange(8, 12)),
        ]
        pairwise = evaluator.pairwise_matrix(parts)
        expected = (pairwise[0, 1] + pairwise[0, 2] + pairwise[1, 2]) / 3
        assert evaluator.unfairness(parts) == pytest.approx(expected)

    def test_identical_partitions_have_zero_unfairness(
        self, small_population: Population
    ) -> None:
        # Same score multiset in both halves -> identical histograms.
        scores = np.tile([0.1, 0.5, 0.9], 4)
        evaluator = UnfairnessEvaluator(small_population, scores)
        parts = [
            Partition(np.array([0, 1, 2, 6, 7, 8])),
            Partition(np.array([3, 4, 5, 9, 10, 11])),
        ]
        assert evaluator.unfairness(parts) == pytest.approx(0.0)

    def test_evaluation_counter_increments(
        self, evaluator: UnfairnessEvaluator
    ) -> None:
        parts = [Partition(np.arange(6)), Partition(np.arange(6, 12))]
        before = evaluator.n_evaluations
        evaluator.unfairness(parts)
        evaluator.unfairness(parts)
        assert evaluator.n_evaluations == before + 2

    def test_union_average_equals_unfairness_of_union(
        self, evaluator: UnfairnessEvaluator
    ) -> None:
        group = [Partition(np.arange(4))]
        siblings = [Partition(np.arange(4, 8)), Partition(np.arange(8, 12))]
        direct = evaluator.unfairness(group + siblings)
        assert evaluator.union_average(group, siblings) == pytest.approx(direct)

    def test_cross_average_excludes_within_set_pairs(
        self, evaluator: UnfairnessEvaluator
    ) -> None:
        a, b = Partition(np.arange(4)), Partition(np.arange(4, 8))
        c = Partition(np.arange(8, 12))
        pairwise = evaluator.pairwise_matrix([a, b, c])
        expected = (pairwise[0, 2] + pairwise[1, 2]) / 2
        assert evaluator.cross_average([a, b], [c]) == pytest.approx(expected)

    def test_cross_average_with_empty_side_is_zero(
        self, evaluator: UnfairnessEvaluator
    ) -> None:
        assert evaluator.cross_average([], [Partition(np.arange(3))]) == 0.0

    def test_pairwise_matrix_symmetric(self, evaluator: UnfairnessEvaluator) -> None:
        parts = [Partition(np.arange(4)), Partition(np.arange(4, 12))]
        matrix = evaluator.pairwise_matrix(parts)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)


class TestConvenienceWrapper:
    def test_one_shot_unfairness(self, small_population: Population) -> None:
        scores = small_population.observed_column("skill")
        parts = [Partition(np.arange(6)), Partition(np.arange(6, 12))]
        one_shot = unfairness(small_population, scores, parts)
        evaluator = UnfairnessEvaluator(small_population, scores)
        assert one_shot == pytest.approx(evaluator.unfairness(parts))

    def test_alternative_metric(self, small_population: Population) -> None:
        scores = small_population.observed_column("skill")
        parts = [Partition(np.arange(6)), Partition(np.arange(6, 12))]
        emd_value = unfairness(small_population, scores, parts, metric="emd")
        ks_value = unfairness(small_population, scores, parts, metric="ks")
        assert emd_value != pytest.approx(ks_value)
