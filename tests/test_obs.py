"""Tests for the observability layer: tracer, metrics, logging, trace export."""

from __future__ import annotations

import json
import logging
import threading
from pathlib import Path

import pytest

from repro import EvaluationEngine, MetricsRegistry, Tracer, write_trace
from repro.core.algorithms import get_algorithm
import numpy as np
from repro.obs import setup_logging
from repro.obs.metrics import BUCKET_BOUNDS, TimingStats
from repro.obs.tracer import NULL_TRACER, TRACE_SCHEMA, NullTracer, _NullSpan
from repro.simulation.generator import toy_population


class TestTracer:
    def test_nested_spans_build_a_tree(self) -> None:
        tracer = Tracer()
        with tracer.span("outer", label="a"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert root.attributes == {"label": "a"}
        assert [child.name for child in root.children] == ["inner", "inner"]
        assert all(child.parent_id == root.span_id for child in root.children)

    def test_children_time_bounded_by_parent(self) -> None:
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        root = tracer.roots[0]
        assert root.duration_seconds >= root.children_seconds
        assert root.self_seconds >= 0.0

    def test_set_attaches_attributes(self) -> None:
        tracer = Tracer()
        with tracer.span("op") as span:
            span.set(value=3.5, done=True)
        assert tracer.roots[0].attributes == {"value": 3.5, "done": True}

    def test_exception_closes_span_and_marks_error(self) -> None:
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("boom")
        span = tracer.roots[0]
        assert span.end is not None
        assert span.attributes["error"] == "ValueError"
        assert tracer.current_span() is None

    def test_breakdown_aggregates_by_name(self) -> None:
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("op"):
                pass
        breakdown = tracer.breakdown()
        assert breakdown["op"]["count"] == 3
        assert breakdown["op"]["total_seconds"] >= 0.0

    def test_span_ids_unique_across_threads(self) -> None:
        tracer = Tracer()

        def record() -> None:
            for _ in range(50):
                with tracer.span("threaded"):
                    pass

        threads = [threading.Thread(target=record) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ids = [span.span_id for span in tracer.iter_spans()]
        assert len(ids) == 200
        assert len(set(ids)) == 200

    def test_json_round_trip(self, tmp_path: Path) -> None:
        tracer = Tracer()
        with tracer.span("outer", k=2):
            with tracer.span("inner"):
                pass
        out = tmp_path / "trace.json"
        payload = write_trace(str(out), tracer)
        loaded = json.loads(out.read_text())
        assert loaded == json.loads(json.dumps(payload))
        assert loaded["schema"] == TRACE_SCHEMA
        root = loaded["spans"][0]
        assert root["name"] == "outer"
        assert root["attributes"] == {"k": 2}
        assert root["children"][0]["name"] == "inner"
        assert loaded["metrics"] is None


class TestNullTracer:
    def test_shared_singleton_span(self) -> None:
        assert NULL_TRACER.enabled is False
        first = NULL_TRACER.span("a", k=1)
        second = NULL_TRACER.span("b")
        assert first is second
        assert isinstance(first, _NullSpan)

    def test_noop_span_records_nothing(self) -> None:
        tracer = NullTracer()
        with tracer.span("op") as span:
            span.set(ignored=True)
        assert tracer.to_dict() == {"spans": []}
        assert tracer.breakdown() == {}
        assert list(tracer.iter_spans()) == []
        assert tracer.current_span() is None


class TestMetricsRegistry:
    def test_counters_and_gauges(self) -> None:
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 4)
        registry.set_gauge("frontier", 7)
        registry.set_gauge("frontier", 3)
        assert registry.counter("hits") == 5
        assert registry.gauge("frontier") == 3
        assert registry.counter("missing") == 0
        assert registry.gauge("missing") is None

    def test_timing_histogram_buckets(self) -> None:
        registry = MetricsRegistry()
        registry.observe("op_seconds", 5e-6)   # first bucket
        registry.observe("op_seconds", 5e-3)   # <= 1e-2
        registry.observe("op_seconds", 100.0)  # overflow bucket
        stats = registry.timing("op_seconds")
        assert stats is not None
        assert stats.count == 3
        assert stats.min == 5e-6
        assert stats.max == 100.0
        assert stats.buckets[0] == 1
        assert stats.buckets[BUCKET_BOUNDS.index(1e-2)] == 1
        assert stats.buckets[-1] == 1

    def test_time_context_manager(self) -> None:
        registry = MetricsRegistry()
        with registry.time("op_seconds"):
            pass
        stats = registry.timing("op_seconds")
        assert stats is not None and stats.count == 1

    def test_merge_accumulates_counters_and_timings(self) -> None:
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("n", 2)
        right.inc("n", 3)
        left.observe("t", 0.5)
        right.observe("t", 1.5)
        left.set_gauge("g", 1)
        right.set_gauge("g", 9)
        left.merge(right)
        assert left.counter("n") == 5
        timing = left.timing("t")
        assert timing is not None
        assert timing.count == 2 and timing.total == 2.0
        assert left.gauge("g") == 9  # gauges: merged-in side wins

    def test_merge_accepts_plain_snapshot(self) -> None:
        """The process-pool path ships ``as_dict()`` snapshots, not objects."""
        worker = MetricsRegistry()
        worker.inc("backend.candidates", 10)
        worker.observe("backend.collect_seconds", 0.25)
        parent = MetricsRegistry()
        parent.inc("backend.candidates", 1)
        parent.merge(worker.as_dict())
        assert parent.counter("backend.candidates") == 11
        timing = parent.timing("backend.collect_seconds")
        assert timing is not None and timing.count == 1

    def test_timing_stats_merge_is_commutative_on_totals(self) -> None:
        a, b = TimingStats(), TimingStats()
        a.observe(0.1)
        b.observe(0.3)
        b.observe(2e-5)
        a.merge(b)
        assert a.count == 3
        assert a.total == pytest.approx(0.4 + 2e-5)
        assert a.min == 2e-5 and a.max == 0.3


class TestLoggingSetup:
    def test_configures_repro_logger_idempotently(self) -> None:
        logger = setup_logging("debug")
        again = setup_logging("info")
        assert logger is again
        tagged = [
            handler
            for handler in logger.handlers
            if getattr(handler, "_repro_obs_handler", False)
        ]
        assert len(tagged) == 1
        assert logger.level == logging.INFO

    def test_rejects_unknown_level(self) -> None:
        with pytest.raises(ValueError):
            setup_logging("loud")


class TestEngineIntegration:
    def test_traced_run_matches_untraced(self) -> None:
        population = toy_population()
        scores = np.random.default_rng(0).uniform(size=population.size)
        untraced = get_algorithm("balanced").run(population, scores)
        tracer, metrics = Tracer(), MetricsRegistry()
        traced = get_algorithm("balanced").run(
            population, scores, tracer=tracer, metrics=metrics
        )
        assert traced.unfairness == untraced.unfairness
        assert traced.partitioning.canonical_key() == untraced.partitioning.canonical_key()
        names = {span.name for span in tracer.iter_spans()}
        assert "algorithm.balanced" in names
        assert "engine.unfairness" in names
        assert metrics.counter("engine.n_evaluations") == traced.n_evaluations
        assert metrics.counter("algorithm.runs") == 1

    def test_sync_metrics_deltas_do_not_double_count(self) -> None:
        population = toy_population()
        scores = np.random.default_rng(0).uniform(size=population.size)
        metrics = MetricsRegistry()
        engine = EvaluationEngine(population, scores, metrics=metrics)
        from repro.core.partition import Partition

        partitions = [
            Partition(population.all_indices()[: population.size // 2]),
            Partition(population.all_indices()[population.size // 2 :]),
        ]
        engine.unfairness(partitions)
        engine.sync_metrics()
        first = metrics.counter("engine.n_evaluations")
        engine.sync_metrics()
        assert metrics.counter("engine.n_evaluations") == first
        engine.unfairness(
            [Partition(population.all_indices())]
        )
        engine.sync_metrics()
        assert metrics.counter("engine.n_evaluations") == first + 1
        engine.close()

    def test_process_backend_merges_worker_metrics(self) -> None:
        population = toy_population()
        scores = np.random.default_rng(0).uniform(size=population.size)
        tracer, metrics = Tracer(), MetricsRegistry()
        result = get_algorithm("balanced").run(
            population,
            scores,
            backend="process",
            workers=2,
            tracer=tracer,
            metrics=metrics,
        )
        sequential = get_algorithm("balanced").run(population, scores)
        assert result.unfairness == sequential.unfairness
        assert metrics.counter("backend.candidates") > 0
        names = {span.name for span in tracer.iter_spans()}
        assert "backend.process.dispatch" in names
        assert "backend.process.collect" in names
