"""Unit tests for partitions and partitionings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partition import Partition, Partitioning
from repro.core.population import Population
from repro.exceptions import PartitioningError


class TestPartition:
    def test_indices_are_sorted_and_read_only(self) -> None:
        partition = Partition(np.array([3, 1, 2]))
        assert partition.indices.tolist() == [1, 2, 3]
        with pytest.raises(ValueError, match="read-only"):
            partition.indices[0] = 0

    def test_size(self) -> None:
        assert Partition(np.array([0, 5, 9])).size == 3

    def test_empty_partition_rejected(self) -> None:
        with pytest.raises(PartitioningError, match="non-empty"):
            Partition(np.array([], dtype=np.int64))

    def test_duplicate_indices_rejected(self) -> None:
        with pytest.raises(PartitioningError, match="duplicate"):
            Partition(np.array([1, 1, 2]))

    def test_two_dimensional_indices_rejected(self) -> None:
        with pytest.raises(PartitioningError, match="one-dimensional"):
            Partition(np.array([[1, 2]]))

    def test_constrained_attributes_in_path_order(self) -> None:
        partition = Partition(np.array([0]), (("gender", 0), ("country", 2)))
        assert partition.constrained_attributes() == ("gender", "country")

    def test_label_with_no_constraints(self, small_population: Population) -> None:
        assert Partition(np.array([0])).label(small_population.schema) == "ALL"

    def test_label_renders_categorical_and_integer(
        self, small_population: Population
    ) -> None:
        partition = Partition(np.array([0]), (("gender", 0), ("age", 0)))
        label = partition.label(small_population.schema)
        assert "gender=Male" in label
        assert "age∈[18-27]" in label

    def test_same_members(self) -> None:
        a = Partition(np.array([1, 2]))
        b = Partition(np.array([2, 1]), (("x", 0),))
        c = Partition(np.array([1, 3]))
        assert a.same_members(b)
        assert not a.same_members(c)

    def test_members_key_is_canonical(self) -> None:
        # The key is the raw bytes of the *sorted* index array, so member
        # order at construction never matters.
        key = Partition(np.array([2, 1])).members_key()
        assert key == np.array([1, 2], dtype=np.int64).tobytes()

    def test_members_key_deduplicates(self) -> None:
        # Same member set -> same key (regardless of constraints or input
        # order); different member set -> different key.
        a = Partition(np.array([3, 1, 2]))
        b = Partition(np.array([1, 2, 3]), (("gender", 0),))
        c = Partition(np.array([1, 2, 4]))
        assert a.members_key() == b.members_key()
        assert a.members_key() != c.members_key()
        assert len({a.members_key(), b.members_key(), c.members_key()}) == 2

    def test_repr(self) -> None:
        assert "size=2" in repr(Partition(np.array([0, 1]), (("g", 1),)))


class TestPartitioning:
    def _cover(self, n: int, *groups: list[int]) -> Partitioning:
        return Partitioning([Partition(np.array(g)) for g in groups], n)

    def test_valid_cover_accepted(self) -> None:
        partitioning = self._cover(4, [0, 1], [2], [3])
        assert partitioning.k == 3
        assert len(partitioning) == 3

    def test_single_partition_cover(self) -> None:
        assert Partitioning([Partition(np.arange(5))], 5).k == 1

    def test_missing_worker_rejected(self) -> None:
        with pytest.raises(PartitioningError, match="covers 3 workers"):
            self._cover(4, [0, 1], [2])

    def test_overlapping_partitions_rejected(self) -> None:
        with pytest.raises(PartitioningError):
            self._cover(4, [0, 1, 2], [2, 3, 0])

    def test_overlap_with_correct_total_rejected(self) -> None:
        # Total size matches the population but worker 1 appears twice and
        # worker 3 never -> must be caught by the disjointness check.
        with pytest.raises(PartitioningError, match="full disjoint"):
            self._cover(4, [0, 1], [1, 2])

    def test_duplicate_coverage_with_right_total_rejected(self) -> None:
        with pytest.raises(PartitioningError):
            self._cover(4, [0, 1], [1, 2])

    def test_empty_partition_list_rejected(self) -> None:
        with pytest.raises(PartitioningError, match="at least one"):
            Partitioning([], 0)

    def test_single_factory(self, small_population: Population) -> None:
        partitioning = Partitioning.single(small_population)
        assert partitioning.k == 1
        assert partitioning.partitions[0].size == small_population.size

    def test_attributes_used_union_sorted(self) -> None:
        partitioning = Partitioning(
            [
                Partition(np.array([0, 1]), (("gender", 0),)),
                Partition(np.array([2]), (("gender", 1), ("country", 0))),
                Partition(np.array([3]), (("gender", 1), ("country", 1))),
            ],
            4,
        )
        assert partitioning.attributes_used() == ("country", "gender")

    def test_max_depth(self) -> None:
        partitioning = Partitioning(
            [
                Partition(np.array([0, 1]), (("gender", 0),)),
                Partition(np.array([2]), (("gender", 1), ("country", 0))),
                Partition(np.array([3]), (("gender", 1), ("country", 1))),
            ],
            4,
        )
        assert partitioning.max_depth() == 2

    def test_canonical_key_ignores_tree_shape(self) -> None:
        by_gender_then_country = Partitioning(
            [
                Partition(np.array([0, 1]), (("gender", 0),)),
                Partition(np.array([2, 3]), (("gender", 1),)),
            ],
            4,
        )
        same_groups_other_path = Partitioning(
            [
                Partition(np.array([0, 1]), (("other", 5),)),
                Partition(np.array([2, 3]), (("other", 6),)),
            ],
            4,
        )
        assert (
            by_gender_then_country.canonical_key()
            == same_groups_other_path.canonical_key()
        )

    def test_describe_orders_largest_first(self, small_population: Population) -> None:
        partitioning = Partitioning(
            [
                Partition(np.arange(6), (("gender", 0),)),
                Partition(np.arange(6, 12), (("gender", 1),)),
            ],
            12,
        )
        descriptions = partitioning.describe(small_population.schema)
        assert len(descriptions) == 2
        assert all("n=6" in d for d in descriptions)

    def test_iteration(self) -> None:
        partitioning = self._cover(3, [0], [1], [2])
        assert [p.size for p in partitioning] == [1, 1, 1]
