"""Unit tests for workload-level auditing."""

from __future__ import annotations

import pytest

from repro.analysis.workload import audit_workload
from repro.core.population import Population
from repro.exceptions import ScoringError
from repro.marketplace.biased import paper_biased_functions
from repro.marketplace.tasks import Task, task_from_weights


@pytest.fixture(scope="module")
def mixed_workload():
    biased = paper_biased_functions()
    tasks = [
        Task("gender-biased-1", "gig", biased["f6"], positions=3),
        Task("gender-biased-2", "gig", biased["f7"], positions=3),
        task_from_weights(
            "neutral", "gig", {"language_test": 0.5, "approval_rate": 0.5}
        ),
    ]
    return tasks


class TestAuditWorkload:
    def test_one_audit_per_task(
        self, paper_population_small: Population, mixed_workload
    ) -> None:
        summary = audit_workload(paper_population_small, mixed_workload)
        assert len(summary.audits) == 3
        assert {a.task_id for a in summary.audits} == {
            "gender-biased-1",
            "gender-biased-2",
            "neutral",
        }

    def test_recurring_attribute_is_gender(
        self, paper_population_small: Population, mixed_workload
    ) -> None:
        summary = audit_workload(paper_population_small, mixed_workload)
        # Two of three tasks are gender-biased by construction.
        assert summary.attribute_frequency["gender"] >= 2
        assert "gender" in summary.recurring_attributes(min_fraction=0.5)

    def test_worst_task_is_the_most_biased(
        self, paper_population_small: Population, mixed_workload
    ) -> None:
        summary = audit_workload(paper_population_small, mixed_workload)
        assert summary.worst_task().task_id == "gender-biased-1"  # f6, EMD ~0.8
        assert summary.max_unfairness == pytest.approx(0.8, abs=0.05)

    def test_mean_between_min_and_max(
        self, paper_population_small: Population, mixed_workload
    ) -> None:
        summary = audit_workload(paper_population_small, mixed_workload)
        values = [a.unfairness for a in summary.audits]
        assert min(values) <= summary.mean_unfairness <= max(values)

    def test_requirements_audited_on_eligible_pool(
        self, paper_population_small: Population
    ) -> None:
        biased = paper_biased_functions()
        filtered_task = Task(
            "filtered",
            "gig",
            biased["f6"],
            positions=2,
            requirements={"approval_rate": 60.0},
        )
        summary = audit_workload(paper_population_small, [filtered_task])
        # The gender bias survives any skill filter (f6 ignores skills).
        assert summary.audits[0].attributes_used == ("gender",)

    def test_empty_workload_rejected(
        self, paper_population_small: Population
    ) -> None:
        with pytest.raises(ScoringError, match="empty workload"):
            audit_workload(paper_population_small, [])

    def test_invalid_min_fraction_rejected(
        self, paper_population_small: Population, mixed_workload
    ) -> None:
        summary = audit_workload(paper_population_small, mixed_workload)
        with pytest.raises(ScoringError, match="min_fraction"):
            summary.recurring_attributes(min_fraction=0.0)

    def test_render_mentions_frequencies(
        self, paper_population_small: Population, mixed_workload
    ) -> None:
        summary = audit_workload(paper_population_small, mixed_workload)
        text = summary.render()
        assert "workload audit over 3 tasks" in text
        assert "gender" in text
