"""End-to-end tests for the command-line interface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self) -> None:
        args = build_parser().parse_args(
            ["generate", "--workers", "50", "--seed", "1", "--out", "x.csv"]
        )
        assert args.command == "generate"
        assert args.workers == 50

    def test_unknown_experiment_rejected(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])


class TestGenerateAndAudit:
    def test_generate_then_audit(self, tmp_path: Path, capsys) -> None:
        csv_path = tmp_path / "workers.csv"
        assert main(["generate", "--workers", "80", "--seed", "3", "--out", str(csv_path)]) == 0
        assert csv_path.exists()
        captured = capsys.readouterr()
        assert "wrote 80 workers" in captured.out

        assert main(["audit", str(csv_path), "--function", "f6", "--algorithm", "balanced"]) == 0
        captured = capsys.readouterr()
        assert "Fairness audit" in captured.out
        assert "gender=Male" in captured.out

    def test_audit_unknown_function(self, tmp_path: Path, capsys) -> None:
        csv_path = tmp_path / "workers.csv"
        main(["generate", "--workers", "30", "--out", str(csv_path)])
        capsys.readouterr()
        assert main(["audit", str(csv_path), "--function", "f99"]) == 2
        assert "unknown function" in capsys.readouterr().err

    def test_audit_with_histograms_flag(self, tmp_path: Path, capsys) -> None:
        csv_path = tmp_path / "workers.csv"
        main(["generate", "--workers", "50", "--out", str(csv_path)])
        capsys.readouterr()
        assert main(["audit", str(csv_path), "--function", "f6", "--histograms"]) == 0
        out = capsys.readouterr().out
        assert "Score histograms:" in out
        assert "█" in out

    def test_audit_with_metric_and_bins(self, tmp_path: Path, capsys) -> None:
        csv_path = tmp_path / "workers.csv"
        main(["generate", "--workers", "40", "--out", str(csv_path)])
        capsys.readouterr()
        assert (
            main(
                [
                    "audit",
                    str(csv_path),
                    "--function",
                    "f1",
                    "--algorithm",
                    "unbalanced",
                    "--metric",
                    "tv",
                    "--bins",
                    "5",
                ]
            )
            == 0
        )
        assert "metric=tv" in capsys.readouterr().out


class TestCompareSignificanceRepair:
    @pytest.fixture()
    def population_csv(self, tmp_path: Path, capsys) -> str:
        csv_path = tmp_path / "workers.csv"
        main(["generate", "--workers", "60", "--seed", "2", "--out", str(csv_path)])
        capsys.readouterr()
        return str(csv_path)

    def test_compare_lists_all_algorithms(self, population_csv: str, capsys) -> None:
        assert main(["compare", population_csv, "--function", "f6"]) == 0
        out = capsys.readouterr().out
        for name in ("unbalanced", "balanced", "all-attributes", "beam"):
            assert name in out

    def test_compare_unknown_function(self, population_csv: str, capsys) -> None:
        assert main(["compare", population_csv, "--function", "f99"]) == 2
        assert "unknown function" in capsys.readouterr().err

    def test_significance_verdict_biased(self, population_csv: str, capsys) -> None:
        assert (
            main(
                [
                    "significance",
                    population_csv,
                    "--function",
                    "f6",
                    "--permutations",
                    "49",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "permutation test" in out
        assert "SIGNIFICANT" in out

    def test_repair_reports_before_and_after(
        self, population_csv: str, tmp_path: Path, capsys
    ) -> None:
        out_path = tmp_path / "repaired.csv"
        assert (
            main(
                [
                    "repair",
                    population_csv,
                    "--function",
                    "f6",
                    "--amount",
                    "1.0",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "before repair" in out
        assert "after repair" in out
        assert out_path.exists()
        header = out_path.read_text().splitlines()[0]
        assert header == "worker,original_score,repaired_score"


class TestWorkload:
    @pytest.fixture()
    def population_csv(self, tmp_path: Path, capsys) -> str:
        csv_path = tmp_path / "workers.csv"
        main(["generate", "--workers", "60", "--seed", "3", "--out", str(csv_path)])
        capsys.readouterr()
        return str(csv_path)

    def test_workload_audit_runs(self, population_csv: str, tmp_path: Path, capsys) -> None:
        import json

        tasks_path = tmp_path / "tasks.json"
        tasks_path.write_text(
            json.dumps(
                [
                    {
                        "id": "t1",
                        "title": "gig",
                        "weights": {"language_test": 1.0},
                        "positions": 2,
                    },
                    {
                        "id": "t2",
                        "weights": {"approval_rate": 1.0},
                        "requirements": {"language_test": 40.0},
                    },
                ]
            )
        )
        assert main(["workload", population_csv, str(tasks_path)]) == 0
        out = capsys.readouterr().out
        assert "workload audit over 2 tasks" in out

    def test_workload_rejects_bad_json(self, population_csv: str, tmp_path: Path, capsys) -> None:
        tasks_path = tmp_path / "tasks.json"
        tasks_path.write_text("{not json")
        assert main(["workload", population_csv, str(tasks_path)]) == 2
        assert "cannot read workload" in capsys.readouterr().err

    def test_workload_rejects_empty_list(self, population_csv: str, tmp_path: Path, capsys) -> None:
        tasks_path = tmp_path / "tasks.json"
        tasks_path.write_text("[]")
        assert main(["workload", population_csv, str(tasks_path)]) == 2
        assert "non-empty" in capsys.readouterr().err

    def test_workload_rejects_malformed_spec(
        self, population_csv: str, tmp_path: Path, capsys
    ) -> None:
        tasks_path = tmp_path / "tasks.json"
        tasks_path.write_text('[{"id": "t1"}]')
        assert main(["workload", population_csv, str(tasks_path)]) == 2
        assert "malformed task spec" in capsys.readouterr().err


class TestExperiment:
    def test_figure1_experiment(self, capsys) -> None:
        assert main(["experiment", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1 toy" in out
        assert "exhaustive" in out

    def test_table_experiment_scaled_down(self, tmp_path: Path, capsys) -> None:
        out_path = tmp_path / "table1.json"
        assert (
            main(
                [
                    "experiment",
                    "table1",
                    "--workers",
                    "100",
                    "--seed",
                    "4",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "average EMD, measured (paper)" in out
        assert "runtime (seconds, ours)" in out
        assert out_path.exists()
