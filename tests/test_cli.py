"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self) -> None:
        args = build_parser().parse_args(
            ["generate", "--workers", "50", "--seed", "1", "--out", "x.csv"]
        )
        assert args.command == "generate"
        assert args.workers == 50

    def test_unknown_experiment_rejected(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])


class TestEngineFlagSurface:
    """The unified --engine-backend/--engine-workers surface + aliases."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["audit", "w.csv", "--engine-backend", "process", "--engine-workers", "2"],
            ["compare", "w.csv", "--engine-backend", "process", "--engine-workers", "2"],
            ["workload", "w.csv", "t.json", "--engine-backend", "process", "--engine-workers", "2"],
            ["experiment", "table1", "--engine-backend", "process", "--engine-workers", "2"],
        ],
    )
    def test_all_four_subcommands_accept_new_flags(self, argv: list[str]) -> None:
        args = build_parser().parse_args(argv)
        assert args.engine_backend == "process"
        assert args.engine_workers == 2
        assert args.trace_out is None
        assert args.log_level is None

    def test_deprecated_backend_alias_warns_and_stores(self) -> None:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            args = build_parser().parse_args(
                ["audit", "w.csv", "--backend", "process", "--workers", "3"]
            )
        assert args.engine_backend == "process"
        assert args.engine_workers == 3
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 2
        messages = sorted(str(w.message) for w in deprecations)
        assert "use --engine-backend" in messages[0]
        assert "use --engine-workers" in messages[1]

    def test_deprecation_warns_once_per_location(self) -> None:
        """Under the default filter, repeat parses warn only the first time."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            for _ in range(3):
                build_parser().parse_args(["compare", "w.csv", "--backend", "sequential"])
        assert len([w for w in caught if w.category is DeprecationWarning]) == 1

    def test_experiment_workers_still_means_population_size(self) -> None:
        args = build_parser().parse_args(["experiment", "table1", "--workers", "100"])
        assert args.workers == 100
        assert args.engine_workers is None

    def test_workload_has_no_deprecated_aliases(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workload", "w.csv", "t.json", "--backend", "process"])

    def test_old_and_new_spellings_behave_identically(
        self, tmp_path: Path, capsys
    ) -> None:
        csv_path = tmp_path / "workers.csv"
        main(["generate", "--workers", "60", "--seed", "5", "--out", str(csv_path)])
        capsys.readouterr()
        assert main(
            ["audit", str(csv_path), "--function", "f6", "--engine-backend", "sequential"]
        ) == 0
        new_out = capsys.readouterr().out
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert main(
                ["audit", str(csv_path), "--function", "f6", "--backend", "sequential"]
            ) == 0
        old_out = capsys.readouterr().out

        def stable(text: str) -> list[str]:
            return [line for line in text.splitlines() if "runtime" not in line]

        assert stable(old_out) == stable(new_out)


class TestTraceOut:
    def test_audit_trace_out_writes_span_tree(self, tmp_path: Path, capsys) -> None:
        csv_path = tmp_path / "workers.csv"
        main(["generate", "--workers", "60", "--seed", "7", "--out", str(csv_path)])
        capsys.readouterr()
        trace_path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "audit",
                    str(csv_path),
                    "--function",
                    "f4",
                    "--algorithm",
                    "balanced",
                    "--trace-out",
                    str(trace_path),
                ]
            )
            == 0
        )
        assert "wrote trace" in capsys.readouterr().out
        payload = json.loads(trace_path.read_text())
        assert payload["schema"] == "repro.trace/v1"

        root = payload["spans"][0]
        assert root["name"] == "cli.audit"

        def names(span):
            yield span["name"]
            for child in span["children"]:
                yield from names(child)

        seen = set(names(root))
        # per-evaluation engine spans made it into the tree
        assert {"audit.search", "algorithm.balanced", "engine.unfairness"} <= seen

        # children never exceed their parent, and direct children cover most
        # of the root (leaf timings sum to the root within tolerance)
        def check(span):
            child_total = sum(c["duration_seconds"] for c in span["children"])
            assert child_total <= span["duration_seconds"] * 1.001 + 1e-9
            for child in span["children"]:
                check(child)

        check(root)
        covered = sum(c["duration_seconds"] for c in root["children"])
        assert covered >= 0.5 * root["duration_seconds"]

        # metrics snapshot travels with the trace
        counters = payload["metrics"]["counters"]
        assert counters["engine.n_evaluations"] >= 1
        assert counters["algorithm.runs"] == 1
        assert payload["breakdown"]["engine.unfairness"]["count"] >= 1


class TestGenerateAndAudit:
    def test_generate_then_audit(self, tmp_path: Path, capsys) -> None:
        csv_path = tmp_path / "workers.csv"
        assert main(["generate", "--workers", "80", "--seed", "3", "--out", str(csv_path)]) == 0
        assert csv_path.exists()
        captured = capsys.readouterr()
        assert "wrote 80 workers" in captured.out

        assert main(["audit", str(csv_path), "--function", "f6", "--algorithm", "balanced"]) == 0
        captured = capsys.readouterr()
        assert "Fairness audit" in captured.out
        assert "gender=Male" in captured.out

    def test_audit_unknown_function(self, tmp_path: Path, capsys) -> None:
        csv_path = tmp_path / "workers.csv"
        main(["generate", "--workers", "30", "--out", str(csv_path)])
        capsys.readouterr()
        assert main(["audit", str(csv_path), "--function", "f99"]) == 2
        assert "unknown function" in capsys.readouterr().err

    def test_audit_with_histograms_flag(self, tmp_path: Path, capsys) -> None:
        csv_path = tmp_path / "workers.csv"
        main(["generate", "--workers", "50", "--out", str(csv_path)])
        capsys.readouterr()
        assert main(["audit", str(csv_path), "--function", "f6", "--histograms"]) == 0
        out = capsys.readouterr().out
        assert "Score histograms:" in out
        assert "█" in out

    def test_audit_with_metric_and_bins(self, tmp_path: Path, capsys) -> None:
        csv_path = tmp_path / "workers.csv"
        main(["generate", "--workers", "40", "--out", str(csv_path)])
        capsys.readouterr()
        assert (
            main(
                [
                    "audit",
                    str(csv_path),
                    "--function",
                    "f1",
                    "--algorithm",
                    "unbalanced",
                    "--metric",
                    "tv",
                    "--bins",
                    "5",
                ]
            )
            == 0
        )
        assert "metric=tv" in capsys.readouterr().out


class TestCompareSignificanceRepair:
    @pytest.fixture()
    def population_csv(self, tmp_path: Path, capsys) -> str:
        csv_path = tmp_path / "workers.csv"
        main(["generate", "--workers", "60", "--seed", "2", "--out", str(csv_path)])
        capsys.readouterr()
        return str(csv_path)

    def test_compare_lists_all_algorithms(self, population_csv: str, capsys) -> None:
        assert main(["compare", population_csv, "--function", "f6"]) == 0
        out = capsys.readouterr().out
        for name in ("unbalanced", "balanced", "all-attributes", "beam"):
            assert name in out

    def test_compare_unknown_function(self, population_csv: str, capsys) -> None:
        assert main(["compare", population_csv, "--function", "f99"]) == 2
        assert "unknown function" in capsys.readouterr().err

    def test_significance_verdict_biased(self, population_csv: str, capsys) -> None:
        assert (
            main(
                [
                    "significance",
                    population_csv,
                    "--function",
                    "f6",
                    "--permutations",
                    "49",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "permutation test" in out
        assert "SIGNIFICANT" in out

    def test_repair_reports_before_and_after(
        self, population_csv: str, tmp_path: Path, capsys
    ) -> None:
        out_path = tmp_path / "repaired.csv"
        assert (
            main(
                [
                    "repair",
                    population_csv,
                    "--function",
                    "f6",
                    "--amount",
                    "1.0",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "before repair" in out
        assert "after repair" in out
        assert out_path.exists()
        header = out_path.read_text().splitlines()[0]
        assert header == "worker,original_score,repaired_score"


class TestWorkload:
    @pytest.fixture()
    def population_csv(self, tmp_path: Path, capsys) -> str:
        csv_path = tmp_path / "workers.csv"
        main(["generate", "--workers", "60", "--seed", "3", "--out", str(csv_path)])
        capsys.readouterr()
        return str(csv_path)

    def test_workload_audit_runs(self, population_csv: str, tmp_path: Path, capsys) -> None:
        import json

        tasks_path = tmp_path / "tasks.json"
        tasks_path.write_text(
            json.dumps(
                [
                    {
                        "id": "t1",
                        "title": "gig",
                        "weights": {"language_test": 1.0},
                        "positions": 2,
                    },
                    {
                        "id": "t2",
                        "weights": {"approval_rate": 1.0},
                        "requirements": {"language_test": 40.0},
                    },
                ]
            )
        )
        assert main(["workload", population_csv, str(tasks_path)]) == 0
        out = capsys.readouterr().out
        assert "workload audit over 2 tasks" in out

    def test_workload_rejects_bad_json(self, population_csv: str, tmp_path: Path, capsys) -> None:
        tasks_path = tmp_path / "tasks.json"
        tasks_path.write_text("{not json")
        assert main(["workload", population_csv, str(tasks_path)]) == 2
        assert "cannot read workload" in capsys.readouterr().err

    def test_workload_rejects_empty_list(self, population_csv: str, tmp_path: Path, capsys) -> None:
        tasks_path = tmp_path / "tasks.json"
        tasks_path.write_text("[]")
        assert main(["workload", population_csv, str(tasks_path)]) == 2
        assert "non-empty" in capsys.readouterr().err

    def test_workload_rejects_malformed_spec(
        self, population_csv: str, tmp_path: Path, capsys
    ) -> None:
        tasks_path = tmp_path / "tasks.json"
        tasks_path.write_text('[{"id": "t1"}]')
        assert main(["workload", population_csv, str(tasks_path)]) == 2
        assert "malformed task spec" in capsys.readouterr().err


class TestRepairFlagSurface:
    """The shared --strategy/--k/--min-proportion/--alpha repair group."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["mitigate", "w.csv", "--strategy", "det_rerank", "--k", "10",
             "--min-proportion", "0.9", "--alpha", "0.2", "--variant", "cons"],
            ["workload", "w.csv", "t.json", "--strategy", "det_rerank", "--k", "10",
             "--min-proportion", "0.9", "--alpha", "0.2", "--variant", "cons"],
            ["experiment", "figure1", "--strategy", "det_rerank", "--k", "10",
             "--min-proportion", "0.9", "--alpha", "0.2", "--variant", "cons"],
            ["submit", "--id", "j", "--scenario", "figure1", "--strategy", "det_rerank",
             "--k", "10", "--min-proportion", "0.9", "--alpha", "0.2",
             "--variant", "cons"],
        ],
    )
    def test_all_four_subcommands_accept_repair_flags(self, argv) -> None:
        args = build_parser().parse_args(argv)
        assert args.strategy == "det_rerank"
        assert args.top_k == 10
        assert args.min_proportion == 0.9
        assert args.alpha == 0.2
        assert args.variant == "cons"

    def test_mitigate_defaults_to_fair_topk(self) -> None:
        args = build_parser().parse_args(["mitigate", "w.csv"])
        assert args.strategy == "fair_topk"
        assert args.top_k is None
        assert args.min_proportion == 0.8
        assert args.alpha == 0.1

    def test_workload_strategy_defaults_to_off(self) -> None:
        assert build_parser().parse_args(["workload", "w.csv", "t.json"]).strategy is None

    def test_unknown_strategy_rejected(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mitigate", "w.csv", "--strategy", "nope"])

    def test_out_of_range_min_proportion_rejected(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mitigate", "w.csv", "--min-proportion", "1.5"])

    def test_submit_kind_flag(self) -> None:
        base = ["submit", "--id", "j", "--scenario", "figure1"]
        assert build_parser().parse_args([*base, "--kind", "mitigate"]).kind == "mitigate"
        assert build_parser().parse_args(base).kind == "audit"
        with pytest.raises(SystemExit):
            build_parser().parse_args([*base, "--kind", "transmogrify"])

    def test_jobs_kind_filter(self) -> None:
        args = build_parser().parse_args(["jobs", "--workdir", "w", "--kind", "mitigate"])
        assert args.kind == "mitigate"
        assert build_parser().parse_args(["jobs", "--workdir", "w"]).kind is None


class TestMitigate:
    @pytest.fixture()
    def population_csv(self, tmp_path: Path, capsys) -> str:
        csv_path = tmp_path / "workers.csv"
        main(["generate", "--workers", "80", "--seed", "9", "--out", str(csv_path)])
        capsys.readouterr()
        return str(csv_path)

    def test_mitigate_reports_before_and_after(
        self, population_csv: str, tmp_path: Path, capsys
    ) -> None:
        out_path = tmp_path / "reranked.csv"
        assert (
            main(
                [
                    "mitigate",
                    population_csv,
                    "--function",
                    "f6",
                    "--strategy",
                    "quantile",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "strategy: quantile" in out
        assert "unfairness before" in out
        assert "unfairness after" in out
        assert "exposure delta" in out
        assert out_path.exists()
        header = out_path.read_text().splitlines()[0]
        assert header == "rank,worker,original_score,repaired_score"

    def test_mitigate_det_rerank_variant(self, population_csv: str, capsys) -> None:
        assert (
            main(
                [
                    "mitigate",
                    population_csv,
                    "--function",
                    "f6",
                    "--strategy",
                    "det_rerank",
                    "--variant",
                    "cons",
                ]
            )
            == 0
        )
        assert "variant" in capsys.readouterr().out

    def test_mitigate_unknown_function(self, population_csv: str, capsys) -> None:
        assert main(["mitigate", population_csv, "--function", "f99"]) == 2
        assert "unknown function" in capsys.readouterr().err

    def test_workload_with_repair_strategy(
        self, population_csv: str, tmp_path: Path, capsys
    ) -> None:
        tasks_path = tmp_path / "tasks.json"
        tasks_path.write_text(
            json.dumps([{"id": "t1", "weights": {"language_test": 1.0}}])
        )
        assert (
            main(
                [
                    "workload",
                    population_csv,
                    str(tasks_path),
                    "--strategy",
                    "quantile",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mitigation (quantile):" in out

    def test_experiment_with_mitigation_table(self, capsys) -> None:
        assert (
            main(
                [
                    "experiment",
                    "figure1",
                    "--strategy",
                    "fair_topk",
                    "--alpha",
                    "0.5",
                    "--min-proportion",
                    "1.0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mitigation (fair_topk" in out
        assert "ndcg@" in out


class TestExperiment:
    def test_figure1_experiment(self, capsys) -> None:
        assert main(["experiment", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1 toy" in out
        assert "exhaustive" in out

    def test_table_experiment_scaled_down(self, tmp_path: Path, capsys) -> None:
        out_path = tmp_path / "table1.json"
        assert (
            main(
                [
                    "experiment",
                    "table1",
                    "--workers",
                    "100",
                    "--seed",
                    "4",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "average EMD, measured (paper)" in out
        assert "runtime (seconds, ours)" in out
        assert out_path.exists()
