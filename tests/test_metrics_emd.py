"""Unit and property tests for the EMD implementation.

The closed form is cross-checked against ``scipy.stats.wasserstein_distance``
and the metric axioms are verified with hypothesis.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import wasserstein_distance

from repro.core.histogram import HistogramSpec
from repro.exceptions import MetricError
from repro.metrics.base import get_metric
from repro.metrics.emd import (
    EMDDistance,
    average_pairwise_emd,
    emd,
    pairwise_emd_matrix,
    sum_pairwise_abs_differences,
)

pmf_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=10, max_size=10
).map(lambda xs: np.array(xs) + 1e-9).map(lambda a: a / a.sum())


class TestClosedForm:
    def test_identical_histograms_have_zero_distance(self) -> None:
        p = np.array([0.5, 0.5, 0.0])
        assert emd(p, p) == 0.0

    def test_adjacent_bin_shift_costs_one_bin_width(self) -> None:
        p = np.array([1.0, 0.0, 0.0])
        q = np.array([0.0, 1.0, 0.0])
        assert emd(p, q, bin_width=0.1) == pytest.approx(0.1)

    def test_full_range_shift_costs_full_distance(self) -> None:
        # All mass in the first bin vs all in the last: EMD = (bins-1)*width.
        p = np.zeros(10)
        p[0] = 1.0
        q = np.zeros(10)
        q[9] = 1.0
        assert emd(p, q, bin_width=0.1) == pytest.approx(0.9)

    def test_table3_f6_calibration(self) -> None:
        # A gender-biased function puts males above 0.8 and females below
        # 0.2; with 10 bins the expected EMD is about 0.8 in score units —
        # the value the paper reports for balanced on f6.
        spec = HistogramSpec(bins=10)
        males = spec.normalized_histogram(np.random.default_rng(0).uniform(0.8, 1.0, 500))
        females = spec.normalized_histogram(np.random.default_rng(1).uniform(0.0, 0.2, 500))
        assert emd(males, females, spec.bin_width) == pytest.approx(0.8, abs=0.02)

    def test_shape_mismatch_rejected(self) -> None:
        with pytest.raises(MetricError, match="shapes differ"):
            emd(np.array([1.0]), np.array([0.5, 0.5]))

    @given(pmf_strategy, pmf_strategy)
    @settings(max_examples=50)
    def test_matches_scipy_wasserstein(self, p: np.ndarray, q: np.ndarray) -> None:
        # scipy computes W1 between distributions over bin-center locations.
        centers = np.arange(10, dtype=np.float64)
        ours = emd(p, q, bin_width=1.0)
        scipys = wasserstein_distance(centers, centers, p, q)
        assert ours == pytest.approx(scipys, abs=1e-9)

    @given(pmf_strategy, pmf_strategy)
    @settings(max_examples=50)
    def test_symmetry(self, p: np.ndarray, q: np.ndarray) -> None:
        assert emd(p, q) == pytest.approx(emd(q, p))

    @given(pmf_strategy, pmf_strategy, pmf_strategy)
    @settings(max_examples=50)
    def test_triangle_inequality(
        self, p: np.ndarray, q: np.ndarray, r: np.ndarray
    ) -> None:
        assert emd(p, r) <= emd(p, q) + emd(q, r) + 1e-9

    @given(pmf_strategy)
    @settings(max_examples=50)
    def test_identity_of_indiscernibles(self, p: np.ndarray) -> None:
        assert emd(p, p) == pytest.approx(0.0, abs=1e-12)

    @given(pmf_strategy, pmf_strategy)
    @settings(max_examples=50)
    def test_bounded_by_score_range(self, p: np.ndarray, q: np.ndarray) -> None:
        # With bin width 1/bins, EMD can never exceed the score range (1.0).
        assert emd(p, q, bin_width=0.1) <= 1.0 + 1e-9


class TestAggregates:
    def test_sum_pairwise_abs_differences_matches_naive(self) -> None:
        rng = np.random.default_rng(3)
        values = rng.uniform(size=17)
        naive = sum(
            abs(values[i] - values[j])
            for i in range(17)
            for j in range(i + 1, 17)
        )
        assert sum_pairwise_abs_differences(values) == pytest.approx(naive)

    def test_sum_pairwise_abs_differences_trivial_cases(self) -> None:
        assert sum_pairwise_abs_differences(np.array([])) == 0.0
        assert sum_pairwise_abs_differences(np.array([3.0])) == 0.0

    def test_pairwise_matrix_is_symmetric_with_zero_diagonal(self) -> None:
        rng = np.random.default_rng(5)
        pmfs = rng.dirichlet(np.ones(10), size=6)
        matrix = pairwise_emd_matrix(pmfs, bin_width=0.1)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)

    def test_average_pairwise_matches_matrix_mean(self) -> None:
        rng = np.random.default_rng(6)
        pmfs = rng.dirichlet(np.ones(10), size=9)
        matrix = pairwise_emd_matrix(pmfs, bin_width=0.1)
        k = pmfs.shape[0]
        expected = matrix[np.triu_indices(k, 1)].mean()
        assert average_pairwise_emd(pmfs, bin_width=0.1) == pytest.approx(expected)

    def test_average_pairwise_fewer_than_two_is_zero(self) -> None:
        assert average_pairwise_emd(np.ones((1, 10)) / 10) == 0.0

    def test_fast_average_scales_to_many_histograms(self) -> None:
        # The O(bins * k log k) path must agree with the naive path at k=200.
        rng = np.random.default_rng(7)
        pmfs = rng.dirichlet(np.ones(10), size=200)
        matrix = pairwise_emd_matrix(pmfs, bin_width=0.1)
        expected = matrix[np.triu_indices(200, 1)].mean()
        assert average_pairwise_emd(pmfs, bin_width=0.1) == pytest.approx(expected)


class TestMetricObject:
    def test_registered_under_emd(self) -> None:
        assert isinstance(get_metric("emd"), EMDDistance)

    def test_distance_uses_score_units(self) -> None:
        spec = HistogramSpec(bins=10)
        p = np.zeros(10)
        p[0] = 1.0
        q = np.zeros(10)
        q[9] = 1.0
        assert get_metric("emd")(p, q, spec) == pytest.approx(0.9)

    def test_rejects_unnormalised_histogram(self) -> None:
        spec = HistogramSpec(bins=3)
        with pytest.raises(MetricError, match="sum to 1"):
            get_metric("emd")(np.array([1.0, 1.0, 0.0]), np.array([1.0, 0.0, 0.0]), spec)

    def test_rejects_negative_mass(self) -> None:
        spec = HistogramSpec(bins=3)
        with pytest.raises(MetricError, match="negative"):
            get_metric("emd")(
                np.array([1.5, -0.5, 0.0]), np.array([1.0, 0.0, 0.0]), spec
            )

    def test_rejects_wrong_width(self) -> None:
        spec = HistogramSpec(bins=4)
        with pytest.raises(MetricError, match="expected"):
            get_metric("emd")(np.ones(3) / 3, np.ones(3) / 3, spec)

    def test_average_cross(self) -> None:
        spec = HistogramSpec(bins=10)
        metric = EMDDistance()
        rng = np.random.default_rng(8)
        left = rng.dirichlet(np.ones(10), size=3)
        right = rng.dirichlet(np.ones(10), size=4)
        expected = np.mean(
            [[metric.distance(l, r, spec) for r in right] for l in left]
        )
        assert metric.average_cross(left, right, spec) == pytest.approx(expected)

    def test_average_cross_empty_side_is_zero(self) -> None:
        spec = HistogramSpec(bins=10)
        metric = EMDDistance()
        assert metric.average_cross(np.zeros((0, 10)), np.ones((1, 10)) / 10, spec) == 0.0
