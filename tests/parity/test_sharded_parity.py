"""Atom-range-sharded execution vs sequential: bit-identical answers.

The :class:`~repro.engine.backends.ShardedBackend` splits every large
histogram entry into contiguous atom-range (or member-range) shards,
computes partial int64 count vectors on worker processes, and merges them
back in shard order before scoring.  Because int64 addition is exact, the
merged counts are the *same integers* the sequential path sums, the pmfs
are the same float64 bytes, and ``full_objective`` sees identical inputs —
so the answer (value, partitioning, tie-breaks) must match bit for bit for
**every algorithm × metric combination**.  These tests force sharding with
``shard_min_rows=2`` so even the small parity populations exercise the
split/merge path, and run under the ``kernel-parity`` CI job.

Like the process-backend parity test, effort counters are not compared —
pool-evaluated candidates are accounted through
``record_external_evaluations``, which is attribution, not arithmetic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.backends import ShardedBackend, _score_wire_tasks
from repro.metrics.base import available_metrics
from tests.parity.conftest import build_scores, run_audit, value_digest

#: Every registered search algorithm; the exhaustive ones only ever run on
#: the three-attribute "small" population (the paper schema blows up).
ALGORITHMS = (
    "balanced",
    "unbalanced",
    "r-balanced",
    "r-unbalanced",
    "beam",
    "exhaustive",
    "all-attributes",
    "single-attribute",
)


def _sharded_backend() -> ShardedBackend:
    # shard_min_rows=2 forces even tiny histogram entries through the
    # split → pool partial-sum → shard-order merge path.
    return ShardedBackend(workers=2, shard_min_rows=2)


@pytest.mark.parity
@pytest.mark.parametrize("metric", sorted(available_metrics()))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_sharded_bit_identical_every_algorithm_metric(
    parity_populations, algorithm: str, metric: str
) -> None:
    population = parity_populations["small"]
    scores = build_scores(population, 23)
    sequential = run_audit(
        population, scores, algorithm, metric=metric, backend="sequential"
    )
    backend = _sharded_backend()
    try:
        sharded = run_audit(
            population, scores, algorithm, metric=metric, backend=backend
        )
    finally:
        backend.close()
    assert sharded.unfairness == sequential.unfairness  # bit-identical
    assert (
        sharded.partitioning.canonical_key()
        == sequential.partitioning.canonical_key()
    )
    assert value_digest(sharded) == value_digest(sequential)
    assert sharded.backend == "sharded"
    assert sharded.workers == 2


@pytest.mark.parity
@pytest.mark.parametrize("algorithm", ["balanced", "unbalanced", "beam"])
@pytest.mark.parametrize("weighting", ["uniform", "size"])
def test_sharded_paper_population(parity_populations, algorithm, weighting) -> None:
    """The realistic six-attribute population, both weightings."""
    population = parity_populations["paper300"]
    scores = build_scores(population, 11)
    sequential = run_audit(
        population, scores, algorithm, weighting=weighting, backend="sequential"
    )
    backend = ShardedBackend(workers=2, shard_min_rows=8)
    try:
        sharded = run_audit(
            population, scores, algorithm, weighting=weighting, backend=backend
        )
    finally:
        backend.close()
    assert sharded.unfairness == sequential.unfairness
    assert value_digest(sharded) == value_digest(sequential)


def test_sharded_smoke_bit_identical(parity_populations) -> None:
    """One fast unmarked combination so tier-1 exercises the real pool
    split/merge path; the full algorithm × metric sweep runs under
    ``-m parity`` in the kernel-parity CI job."""
    population = parity_populations["small"]
    scores = build_scores(population, 23)
    sequential = run_audit(population, scores, "balanced", backend="sequential")
    backend = _sharded_backend()
    try:
        sharded = run_audit(population, scores, "balanced", backend=backend)
    finally:
        backend.close()
    assert sharded.unfairness == sequential.unfairness
    assert value_digest(sharded) == value_digest(sequential)
    assert sharded.backend == "sharded"


def test_shard_merge_is_exact_for_member_entries() -> None:
    """Unit-level pin of the merge contract: partial bincounts over
    contiguous member ranges, re-added in shard order, equal the unsharded
    bincount integer for integer — and an ("h", counts, size) entry scores
    exactly like the ("m", members) entry it replaced."""
    from repro.core.histogram import HistogramSpec
    from repro.metrics.base import get_metric

    rng = np.random.default_rng(0)
    spec = HistogramSpec(bins=10)
    scores = rng.random(1000)
    bin_idx = spec.bin_indices(scores)
    members = np.arange(1000)
    whole = spec.histogram_from_bin_indices(bin_idx[members])
    pieces = np.array_split(members, 7)
    merged = spec.histogram_from_bin_indices(bin_idx[pieces[0]])
    for piece in pieces[1:]:
        merged = merged + spec.histogram_from_bin_indices(bin_idx[piece])
    assert np.array_equal(merged, whole)

    metric = get_metric("emd")
    task_m = [("m", members[:500]), ("m", members[500:])]
    task_h = [
        ("h", spec.histogram_from_bin_indices(bin_idx[members[:500]]), 500),
        ("h", spec.histogram_from_bin_indices(bin_idx[members[500:]]), 500),
    ]
    value_m = _score_wire_tasks(spec, metric, bin_idx, "uniform", None, [task_m])
    value_h = _score_wire_tasks(spec, metric, bin_idx, "uniform", None, [task_h])
    assert value_m == value_h


def test_sharded_falls_back_locally_when_pool_degraded(parity_populations) -> None:
    """A degraded backend (irrecoverable pool) must still produce the
    bit-identical answer through the parent-local arithmetic."""
    population = parity_populations["small"]
    scores = build_scores(population, 23)
    sequential = run_audit(population, scores, "balanced", backend="sequential")
    backend = _sharded_backend()
    backend._degraded = True  # simulate an irrecoverable pool
    try:
        sharded = run_audit(population, scores, "balanced", backend=backend)
    finally:
        backend.close()
    assert sharded.unfairness == sequential.unfairness
    assert value_digest(sharded) == value_digest(sequential)
