"""Shared fixtures for the differential parity harness.

This is the single source of truth for "bit-identical" assertions across
the suite: the scenario matrix (seeded populations + score vectors), the
digest helpers that reduce an audit result to a comparable byte string,
and the streaming-store builders that used to live inline in
``tests/test_streaming.py``.

The parity contract (see ``docs/robustness.md``): every kernel backend ×
execution backend × atom/member path produces the **same IEEE floats, the
same partitioning, the same effort counters and the same tie-breaks** as
the reference scalar path.  All comparisons here are exact (``==`` /
``np.array_equal``) — approximate assertions would hide the very drift
this harness exists to catch.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.core.algorithms.base import get_algorithm
from repro.core.attributes import (
    CategoricalAttribute,
    IntegerAttribute,
    ObservedAttribute,
)
from repro.core.population import Population
from repro.core.schema import WorkerSchema
from repro.engine.kernels import kernel_backend_status
from repro.marketplace.streaming import MutablePopulation, random_mutation_mix
from repro.simulation.config import PaperConfig
from repro.simulation.generator import generate_paper_population, toy_population
from repro.simulation.scenarios import table1_scenario

# ------------------------------------------------------------ scenario matrix

#: Names of the seeded populations the parity matrix runs over.
PARITY_POPULATIONS = ("toy", "small", "paper300")

#: (population name, score seed) cells of the matrix.
PARITY_CASES = (("toy", 3), ("small", 11), ("paper300", 23))


def _small_population() -> Population:
    """Fixed 12-worker population (duplicated codes on purpose, so the
    dedup'd kernel entry points are exercised)."""
    schema = WorkerSchema(
        protected=(
            CategoricalAttribute("gender", ("Male", "Female")),
            CategoricalAttribute("country", ("America", "India", "Other")),
            IntegerAttribute("age", 18, 67, buckets=5),
        ),
        observed=(ObservedAttribute("skill", 0.0, 1.0),),
    )
    return Population(
        schema,
        protected={
            "gender": np.array([0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1]),
            "country": np.array([0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2]),
            "age": np.array([20, 30, 40, 50, 60, 25, 35, 45, 55, 65, 22, 33]),
        },
        observed={
            "skill": np.array(
                [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05, 0.95, 0.45]
            )
        },
    )


def build_population(name: str) -> Population:
    if name == "toy":
        return toy_population()
    if name == "small":
        return _small_population()
    if name == "paper300":
        return generate_paper_population(300, seed=7)
    raise KeyError(f"unknown parity population {name!r}")


def build_scores(population: Population, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).random(population.size)


@pytest.fixture(scope="session")
def parity_populations() -> dict:
    """All matrix populations, built once per session."""
    return {name: build_population(name) for name in PARITY_POPULATIONS}


# ------------------------------------------------------------ kernel backends


def kernel_params():
    """Every kernel backend as a pytest param; unavailable ones (numba
    without the dependency installed) are skipped *with a notice* rather
    than silently dropped from the matrix."""
    status = kernel_backend_status()
    available = set(status["available"])
    params = []
    for name in status["registered"]:
        if name in available:
            marks = ()
        else:
            reason = status.get(name, {}).get("reason") or "unavailable"
            marks = (
                pytest.mark.skip(
                    reason=f"kernel backend {name!r} unavailable: {reason}"
                ),
            )
        params.append(pytest.param(name, id=name, marks=marks))
    return params


# -------------------------------------------------------------- digest helpers


def result_digest(result) -> str:
    """SHA-256 over everything a run promises to reproduce bit-identically.

    ``float.hex`` keeps the full IEEE value (no decimal rounding), the
    canonical partitioning key pins group membership *and* tie-breaks, and
    the effort counters pin the search trajectory — two runs with equal
    digests did the same work and found the same answer.
    """
    payload = {
        "unfairness": float(result.unfairness).hex(),
        "partitioning": result.partitioning.canonical_key(),
        "n_evaluations": result.n_evaluations,
        "cache_hits": result.cache_hits,
        "n_full_evaluations": result.n_full_evaluations,
        "n_incremental_evaluations": result.n_incremental_evaluations,
        "pair_distances_computed": result.pair_distances_computed,
    }
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()


def value_digest(result) -> str:
    """SHA-256 over the *answer* alone (full-precision unfairness +
    canonical partitioning incl. tie-breaks).  Use this where effort may
    legitimately differ — e.g. a warm cross-job-cache run skips work a cold
    run paid for, but must land on the identical answer."""
    payload = {
        "unfairness": float(result.unfairness).hex(),
        "partitioning": result.partitioning.canonical_key(),
    }
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()


def assert_results_identical(actual, reference) -> None:
    """Exact equality on value, partitioning and effort counters."""
    assert actual.unfairness == reference.unfairness
    assert (
        actual.partitioning.canonical_key()
        == reference.partitioning.canonical_key()
    )
    assert actual.n_evaluations == reference.n_evaluations
    assert actual.cache_hits == reference.cache_hits
    assert actual.n_full_evaluations == reference.n_full_evaluations
    assert actual.n_incremental_evaluations == reference.n_incremental_evaluations
    assert result_digest(actual) == result_digest(reference)


def run_audit(population, scores, algorithm="balanced", **kwargs):
    """One audit run with a pinned rng; kwargs select the path under test."""
    return get_algorithm(algorithm).run(
        population, scores, metric=kwargs.pop("metric", "emd"), rng=5, **kwargs
    )


# ---------------------------------------------------- streaming store helpers
# (Moved from tests/test_streaming.py so both the legacy streaming suite and
# the parity harness share one definition.)


def small_store(seed: int = 0, n_workers: int = 120) -> MutablePopulation:
    scenario = table1_scenario(PaperConfig(n_workers=n_workers, seed=seed))
    population = scenario.population
    scores = next(iter(scenario.functions.values()))(population)
    return MutablePopulation.from_population(
        population, scores, hist_spec=scenario.hist_spec
    )


def mutate(store: MutablePopulation, seed: int, count: int, weights=None):
    kwargs = {} if weights is None else {"weights": weights}
    for mutation in random_mutation_mix(
        store, np.random.default_rng(seed), count, **kwargs
    ):
        store.apply(mutation)


def batch_audit(store: MutablePopulation, algorithm="balanced", metric="emd", **kw):
    population, scores = store.to_population()
    return get_algorithm(algorithm).run(
        population, scores, hist_spec=store.hist_spec, metric=metric, rng=0, **kw
    )


def group_table(result) -> list:
    return sorted(
        (tuple(sorted(p.constraints)), p.size) for p in result.partitioning
    )


def report_table(report) -> list:
    return sorted(
        zip((tuple(sorted(g)) for g in report.groups), report.group_sizes)
    )
