"""Streaming parity: incremental audits vs fresh batch audits.

(Consolidated here from ``tests/test_streaming.py`` — the store builders
and table helpers live in ``tests/parity/conftest.py``.)

The load-bearing property: after ANY interleaving of add/remove/
update_score mutations, a streaming re-audit is bit-identical — same
unfairness float, same groups, same true group sizes — to a fresh batch
audit of the frozen final population.
"""

from __future__ import annotations

import pytest

from repro.engine.streaming import StreamingAuditor

from tests.parity.conftest import (
    batch_audit,
    group_table,
    mutate,
    report_table,
    small_store,
)

STREAMING_ALGORITHMS = ("balanced", "unbalanced")
STREAMING_METRICS = ("emd", "js", "tv")


@pytest.mark.parametrize("algorithm", STREAMING_ALGORITHMS)
@pytest.mark.parametrize("metric", STREAMING_METRICS)
def test_interleaving_then_audit_equals_fresh_batch(
    algorithm: str, metric: str
) -> None:
    store = small_store(seed=1)
    auditor = StreamingAuditor(store, algorithm=algorithm, metric=metric, seed=0)
    try:
        for round_seed in (21, 22, 23):
            mutate(store, seed=round_seed, count=70)
            report = auditor.audit()
            result = batch_audit(store, algorithm=algorithm, metric=metric)
            assert report.unfairness == result.unfairness
            assert report_table(report) == group_table(result)
            assert report.population_size == store.size
    finally:
        auditor.close()


def test_size_weighting_bit_identical() -> None:
    store = small_store(seed=2)
    mutate(store, seed=31, count=120)
    auditor = StreamingAuditor(
        store, algorithm="balanced", metric="emd", weighting="size", seed=0
    )
    try:
        report = auditor.audit()
        result = batch_audit(store, weighting="size")
        assert report.unfairness == result.unfairness
    finally:
        auditor.close()
