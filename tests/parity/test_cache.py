"""Cache correctness: the content-addressed cross-job cache can make audits
cheaper but can never make them *different*.

Covers the satellite contract: digest collisions are rejected, mutation of a
monitored population invalidates exactly its entries, a SIGKILL'd daemon
replays its journal into a consistent cache-cold state, and a cache hit
reproduces the miss result byte-for-byte (digest-asserted).
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.service import AuditService, ServiceConfig
from repro.service import cache as cache_mod
from repro.service.cache import (
    CachingEngineFactory,
    CrossJobCache,
    cached_audit,
    population_fingerprint,
    scores_fingerprint,
)
from repro.service.jobs import AuditJob
from repro.service.monitor import MonitorSpec

from tests.parity.conftest import (
    build_population,
    build_scores,
    run_audit,
    value_digest,
)


def _rows_digest(result: dict) -> str:
    return json.dumps(result["rows"], sort_keys=True)


# ------------------------------------------------------------------ unit level


class TestCrossJobCache:
    def test_round_trip_and_lru_eviction(self):
        cache = CrossJobCache(max_bytes=100)
        cache.put(("a",), {"v": 1}, 40)
        cache.put(("b",), {"v": 2}, 40)
        assert cache.get(("a",)) == {"v": 1}  # refresh a's recency
        cache.put(("c",), {"v": 3}, 40)  # evicts b (LRU), not a
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == {"v": 1}
        assert cache.get(("c",)) == {"v": 3}
        assert cache.evictions == 1

    def test_oversized_entry_not_admitted(self):
        cache = CrossJobCache(max_bytes=100)
        cache.put(("small",), {"v": 1}, 40)
        cache.put(("huge",), {"v": 2}, 101)
        assert cache.get(("huge",)) is None
        assert cache.get(("small",)) == {"v": 1}  # untouched

    def test_disabled_cache_never_stores(self):
        for budget in (None, 0):
            cache = CrossJobCache(max_bytes=budget)
            cache.put(("a",), {"v": 1}, 10)
            assert cache.get(("a",)) is None
            assert not cache.enabled

    def test_fingerprint_collisions_rejected(self, monkeypatch):
        """Two different key materials forced onto one digest: the lookup
        compares the full material and refuses to serve the wrong payload."""
        monkeypatch.setattr(cache_mod, "cache_key", lambda material: "constant")
        cache = CrossJobCache(max_bytes=1000)
        cache.put(("material-a",), {"v": "a"}, 10)
        assert cache.get(("material-b",)) is None  # collision → rejected
        assert cache.collisions == 1
        assert cache.get(("material-a",)) == {"v": "a"}

    def test_invalidate_owner_is_exact(self):
        cache = CrossJobCache(max_bytes=10_000)
        cache.put(("a1",), {"v": 1}, 10, owner="monitor:a")
        cache.put(("a2",), {"v": 2}, 10, owner="monitor:a")
        cache.put(("b1",), {"v": 3}, 10, owner="monitor:b")
        cache.put(("s1",), {"v": 4}, 10, owner="scenario:x")
        assert cache.invalidate_owner("monitor:a") == 2
        assert cache.get(("a1",)) is None
        assert cache.get(("a2",)) is None
        assert cache.get(("b1",)) == {"v": 3}
        assert cache.get(("s1",)) == {"v": 4}
        assert cache.invalidate_owner("monitor:a") == 0

    def test_fingerprints_track_content(self):
        population = build_population("small")
        scores = build_scores(population, 11)
        assert population_fingerprint(population) == population_fingerprint(population)
        assert scores_fingerprint(scores) == scores_fingerprint(scores)
        other = scores.copy()
        other[0] = np.nextafter(other[0], 1.0)
        assert scores_fingerprint(scores) != scores_fingerprint(other)
        subset = population.subset(np.arange(population.size - 1))
        assert population_fingerprint(population) != population_fingerprint(subset)


# ------------------------------------------------------------ engine factory


def test_warm_engine_reproduces_cold_run_bit_for_bit():
    """An audit through a warm CachingEngineFactory (atoms + value cache
    both hits) is digest-identical to the cold run that populated it."""
    population = build_population("paper300")
    scores = build_scores(population, 23)
    cache = CrossJobCache(max_bytes=64 * 1024 * 1024)
    factory = CachingEngineFactory(cache)
    cold = run_audit(population, scores, engine_factory=factory)
    assert cache.stats()["entries"] >= 1
    warm = run_audit(population, scores, engine_factory=factory)
    assert cache.hits >= 1
    # The warm run legitimately does *less work* (seeded value cache), but
    # the answer — full-precision float, groups, tie-breaks — is identical.
    assert value_digest(warm) == value_digest(cold)
    # And identical to a run that never saw a cache at all.
    plain = run_audit(population, scores)
    assert value_digest(plain) == value_digest(cold)


def test_cached_audit_memoises_exactly():
    """The full-result memo replays the stored result only when every piece
    of search-determining material matches, and the cold run it stores is
    the same answer an uncached audit produces."""
    population = build_population("small")
    scores = build_scores(population, 11)
    cache = CrossJobCache(max_bytes=16 * 1024 * 1024)
    cold = cached_audit(cache, "balanced", population, scores, rng=5)
    warm = cached_audit(cache, "balanced", population, scores, rng=5)
    assert warm is cold  # replayed, not recomputed
    assert value_digest(cold) == value_digest(run_audit(population, scores))
    # Any material change misses: different seed, metric, or scores.
    assert cached_audit(cache, "balanced", population, scores, rng=6) is not cold
    assert (
        cached_audit(cache, "balanced", population, scores, rng=5, metric="js")
        is not cold
    )
    other = scores.copy()
    other[0] = np.nextafter(other[0], 1.0)
    assert cached_audit(cache, "balanced", population, other, rng=5) is not cold
    # A live generator cannot be fingerprinted: bypasses the memo safely.
    bypass = cached_audit(
        cache, "balanced", population, scores, rng=np.random.default_rng(5)
    )
    assert bypass is not cold


# ------------------------------------------------------------- service level


@pytest.fixture()
def service(tmp_path):
    svc = AuditService(
        ServiceConfig(
            tmp_path,
            workers=1,
            port=None,
            poll_seconds=0.01,
            monitor_poll_seconds=0.02,
        )
    ).start()
    yield svc
    svc.stop()


def _wait_for_audit(svc, monitor_id: str, minimum: int = 1, timeout: float = 20.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if svc.monitor(monitor_id).audits >= minimum:
            return
        time.sleep(0.02)
    raise AssertionError(f"monitor {monitor_id} never reached {minimum} audits")


class TestServiceCache:
    def test_cache_hit_reproduces_miss_byte_for_byte(self, service):
        service.submit(AuditJob(id="cold", scenario="figure1"))
        assert service.drain(timeout=120)
        cold = service.record("cold").result
        hits_before = service.cache.hits
        service.submit(AuditJob(id="warm", scenario="figure1"))
        assert service.drain(timeout=120)
        warm = service.record("warm").result
        assert service.cache.hits > hits_before
        assert _rows_digest(warm) == _rows_digest(cold)

    def test_mutation_invalidates_exactly_its_monitor(self, service):
        for monitor_id in ("ma", "mb"):
            service.create_monitor(
                MonitorSpec(
                    id=monitor_id,
                    scenario="table1",
                    n_workers=200,
                    debounce_seconds=0.0,
                    delta_series=False,
                )
            )
            service.apply_mutations(
                monitor_id,
                [{"kind": "update_score", "worker_id": 1, "score": 0.5}],
            )
            _wait_for_audit(service, monitor_id)
        # Both monitors harvested an entry each.
        stats = service.cache.stats()
        assert stats["entries"] >= 2
        invalidated_before = service.cache.invalidated
        service.apply_mutations(
            "ma", [{"kind": "update_score", "worker_id": 2, "score": 0.9}]
        )
        assert service.cache.invalidated == invalidated_before + 1
        # mb's entry survived: the next mb audit can still hit it, and the
        # re-audit of the mutated ma is computed fresh (never stale).
        _wait_for_audit(service, "ma", minimum=2)
        series = service.monitor_series("ma")
        audits = [point for point in series if point["kind"] == "audit"]
        from tests.parity.conftest import batch_audit

        fresh = batch_audit(service.monitor("ma").store, algorithm="balanced")
        assert audits[-1]["unfairness"] == fresh.unfairness

    def test_sigkill_journal_replay_restores_cache_cold_state(self, tmp_path):
        config = ServiceConfig(
            tmp_path, workers=1, port=None, poll_seconds=0.01,
            monitor_poll_seconds=0.02,
        )
        svc = AuditService(config).start()
        svc.submit(AuditJob(id="j1", scenario="figure1"))
        assert svc.drain(timeout=120)
        svc.create_monitor(
            MonitorSpec(
                id="m1",
                scenario="table1",
                n_workers=200,
                debounce_seconds=0.0,
                delta_series=False,
            )
        )
        svc.apply_mutations(
            "m1", [{"kind": "update_score", "worker_id": 1, "score": 0.4}]
        )
        _wait_for_audit(svc, "m1")
        assert svc.cache.stats()["entries"] >= 1
        # SIGKILL: abandon the daemon without stop() — no drain, no goodbye.
        # Only the journal (and snapshots) survive; close the file handle the
        # way the OS would.
        svc._shutdown.set()
        for thread in svc._threads + [svc._monitor_thread]:
            thread.join(timeout=10)
        svc.journal.close()
        revived = AuditService(config).start()
        try:
            # State is consistent (job result intact, monitor restored)...
            assert revived.record("j1").result is not None
            assert revived.monitor("m1").store.size > 0
            # ...and the cache is cold: no entry outlives the process.
            stats = revived.cache.stats()
            assert stats["entries"] == 0
            assert stats["bytes"] == 0
            assert stats["hits"] == 0
        finally:
            revived.stop()
