"""Execution-path parity: atoms vs member arrays, process pool vs
sequential.  (Consolidated here from ``tests/test_atoms.py`` and
``tests/test_engine.py`` — the shared scenario matrix and digest helpers
live in ``tests/parity/conftest.py``.)
"""

from __future__ import annotations

import pytest

from tests.parity.conftest import build_scores, run_audit, value_digest


@pytest.mark.parametrize("algorithm", ["balanced", "unbalanced", "beam"])
@pytest.mark.parametrize("weighting", ["uniform", "size"])
def test_atom_and_member_paths_bit_identical(
    parity_populations, algorithm: str, weighting: str
) -> None:
    """Same unfairness, same partitioning, same *counters*: the atom path is
    a different route through the same arithmetic, not a different model."""
    population = parity_populations["paper300"]
    scores = build_scores(population, 11)
    atom = run_audit(
        population, scores, algorithm, weighting=weighting, use_atoms=True
    )
    member = run_audit(
        population, scores, algorithm, weighting=weighting, use_atoms=False
    )
    assert atom.unfairness == member.unfairness
    assert atom.partitioning.canonical_key() == member.partitioning.canonical_key()
    assert atom.n_evaluations == member.n_evaluations
    assert atom.cache_hits == member.cache_hits
    assert atom.n_full_evaluations == member.n_full_evaluations
    assert atom.n_incremental_evaluations == member.n_incremental_evaluations


@pytest.mark.parametrize("algorithm", ["balanced", "unbalanced", "beam", "exhaustive"])
def test_process_backend_bit_identical(parity_populations, algorithm) -> None:
    # The exhaustive search space explodes on the six-attribute paper schema;
    # run it on the three-attribute small population instead.
    population = parity_populations[
        "small" if algorithm == "exhaustive" else "paper300"
    ]
    scores = build_scores(population, 23)
    sequential = run_audit(population, scores, algorithm, backend="sequential")
    pooled = run_audit(population, scores, algorithm, backend="process", workers=2)
    assert pooled.unfairness == sequential.unfairness  # bit-identical, no approx
    assert pooled.partitioning.canonical_key() == sequential.partitioning.canonical_key()
    assert value_digest(pooled) == value_digest(sequential)
    assert pooled.backend == "process"
    assert pooled.workers == 2
    assert sequential.backend == "sequential"
