"""Counter-pinned regression for the PR-4 dedup inefficiency.

The old scalar ``cross_matrix`` fallback deduplicated unique rows but the
pairwise loop still rescanned duplicate atom pairs — one ``metric.distance``
call per *occurrence* rather than per *distinct* pair.  The dedup now lives
in the kernel entry points (every backend), and these tests pin the exact
evaluation counts so the inefficiency cannot quietly return.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.histogram import HistogramSpec
from repro.engine.kernels import _REF_KERNELS, cross_matrix, pairwise_matrix
from repro.metrics import get_metric

SPEC = HistogramSpec(bins=6)

#: The LP-based transport metric has no vectorized kernel, so it exercises
#: the per-pair fallback loop whose call count the dedup bounds.
FALLBACK = "emd-t"


def _stack_with_duplicates(k: int, unique: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    base = rng.random((unique, SPEC.bins))
    base /= base.sum(axis=1, keepdims=True)
    rows = base[rng.integers(0, unique, size=k)]
    # Force every distinct row to appear at least once.
    rows[:unique] = base
    return rows


class _CountingMetric:
    """Wraps a metric to count ``distance`` calls (the fallback's unit of
    work)."""

    def __init__(self, name: str):
        self._metric = get_metric(name)
        self.name = self._metric.name
        self.calls = 0

    def distance(self, p, q, spec):
        self.calls += 1
        return self._metric.distance(p, q, spec)

    def __getattr__(self, attribute):
        return getattr(self._metric, attribute)


def test_pairwise_fallback_never_rescans_duplicate_pairs() -> None:
    k, unique = 10, 4
    stack = _stack_with_duplicates(k, unique, seed=3)
    metric = _CountingMetric(FALLBACK)
    counters: dict = {}
    out = pairwise_matrix(metric, stack, SPEC, kernel="numpy", counters=counters)
    # Distinct unordered pairs + one self-distance per duplicated unique row
    # — never the naive k*(k-1)/2 = 45 rescans of duplicate pairs.
    duplicated = sum(
        1 for count in np.unique(stack, axis=0, return_counts=True)[1] if count > 1
    )
    expected = unique * (unique - 1) // 2 + duplicated
    assert metric.calls == expected
    assert counters["pairs_evaluated"] == expected
    assert counters["pairs_served"] == k * k
    assert metric.calls < k * (k - 1) // 2
    # The scattered matrix is still the full dense answer.
    reference = np.zeros((k, k))
    for i in range(k):
        for j in range(k):
            if i != j:
                reference[i, j] = get_metric(FALLBACK).distance(
                    stack[i], stack[j], SPEC
                )
    assert np.allclose(out, out.T)
    assert np.array_equal(np.diag(out), np.zeros(k))
    assert np.allclose(out, reference)


def test_cross_fallback_dedups_both_sides() -> None:
    left = _stack_with_duplicates(8, 3, seed=5)
    right = _stack_with_duplicates(6, 2, seed=7)
    metric = _CountingMetric(FALLBACK)
    counters: dict = {}
    out = cross_matrix(metric, left, right, SPEC, kernel="numpy", counters=counters)
    assert metric.calls == 3 * 2
    assert counters["pairs_evaluated"] == 3 * 2
    assert counters["pairs_served"] == 8 * 6
    assert out.shape == (8, 6)


@pytest.mark.parametrize("kernel", ["numpy", "scalar"])
def test_fused_paths_also_dedup(kernel: str) -> None:
    """The hoist covers the vectorized backends too: on stacks past the
    profitability gate, duplicate rows never inflate ``pairs_evaluated``."""
    k, unique = 256, 5  # k*k >= DEDUP_MIN_PAIRS_PER_ROW * 2k: gate open
    stack = _stack_with_duplicates(k, unique, seed=11)
    counters: dict = {}
    pairwise_matrix(get_metric("emd"), stack, SPEC, kernel=kernel, counters=counters)
    assert counters["pairs_evaluated"] == unique * unique
    assert counters["pairs_served"] == k * k


@pytest.mark.parametrize("kernel", ["numpy", "scalar"])
def test_skinny_fused_blocks_skip_the_sort(kernel: str) -> None:
    """Below the gate the unique sort costs more than the fused block it
    would save (the streaming delta path's 1-row cross regression), so the
    dense block is computed directly — on every backend, counters agree."""
    metric = get_metric("emd")
    stack = _stack_with_duplicates(40, 4, seed=17)
    counters: dict = {}
    out = cross_matrix(metric, stack[:1], stack, SPEC, kernel=kernel, counters=counters)
    assert counters["pairs_evaluated"] == 1 * 40  # no dedup: full block
    assert counters["pairs_served"] == 1 * 40
    reference = np.array(
        [[get_metric("emd").distance(stack[0], row, SPEC) for row in stack]]
    )
    assert np.allclose(out, reference)
    # The fallback metric ignores the gate: a per-pair LP call dwarfs the
    # sort at any size, so even a skinny block dedups.
    fallback_counters: dict = {}
    cross_matrix(
        get_metric(FALLBACK), stack[:1], stack, SPEC,
        kernel=kernel, counters=fallback_counters,
    )
    assert fallback_counters["pairs_evaluated"] == 1 * 4


def test_dedup_scatter_matches_naive_dense() -> None:
    """Bit-identity of the dedup'd path against a naive dense evaluation
    (each output cell is a pure function of its row pair)."""
    stack = _stack_with_duplicates(9, 4, seed=13)
    metric = get_metric("emd")
    fast = pairwise_matrix(metric, stack, SPEC, kernel="numpy")
    reference = _REF_KERNELS["emd"]
    naive = np.zeros((9, 9))
    for i in range(9):
        for j in range(9):
            naive[i, j] = reference(stack[i], stack[j], SPEC)
    np.fill_diagonal(naive, 0.0)
    naive = 0.5 * (naive + naive.T)
    assert np.array_equal(fast, naive)
