"""Property tests: compiled kernels == scalar reference, exactly.

Hypothesis generates random pmf stacks (including zero rows, empty bins,
one-hot mass and denormal weights) and asserts the fused numpy kernels,
the pure-Python block kernels (the jit-able forms numba compiles) and the
mirrored scalar references all produce the **same IEEE floats** — equality
is ``np.array_equal``, never approx, because the backends share dtype and
order of operations by construction.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histogram import HistogramSpec
from repro.engine.kernels import (
    _PY_BLOCK_KERNELS,
    _REF_KERNELS,
    _self_check_blocks,
    cross_matrix,
    pairwise_matrix,
)
from repro.metrics import get_metric

KERNEL_METRICS = tuple(sorted(_REF_KERNELS))


def _pmf_stack(rows: list, bins: int) -> np.ndarray:
    stack = np.array(rows, dtype=np.float64).reshape(len(rows), bins)
    sums = stack.sum(axis=1, keepdims=True)
    # Normalise rows with mass; keep all-zero rows as-is (empty partitions).
    np.divide(stack, sums, out=stack, where=sums > 0)
    return stack


def _weights() -> st.SearchStrategy:
    return st.one_of(
        st.floats(
            min_value=0.0,
            max_value=1.0,
            allow_nan=False,
            allow_infinity=False,
        ),
        # Denormal / tiny weights: the pairwise-summation replica must not
        # flush or reorder them differently from np.sum.
        st.sampled_from([0.0, 5e-324, 1e-308, 2.5e-310, 1e-45]),
    )


@st.composite
def pmf_stacks(draw):
    bins = draw(st.integers(min_value=1, max_value=24))
    k = draw(st.integers(min_value=1, max_value=6))
    rows = [
        draw(st.lists(_weights(), min_size=bins, max_size=bins))
        for _ in range(k)
    ]
    return _pmf_stack(rows, bins)


@pytest.mark.parametrize("name", KERNEL_METRICS)
@given(stack=pmf_stacks())
@settings(max_examples=40, deadline=None)
def test_fused_equals_scalar_reference(name: str, stack: np.ndarray) -> None:
    metric = get_metric(name)
    spec = HistogramSpec(bins=stack.shape[1])
    fused = pairwise_matrix(metric, stack, spec, kernel="numpy")
    scalar = pairwise_matrix(metric, stack, spec, kernel="scalar")
    assert np.array_equal(fused, scalar)
    cross_fused = cross_matrix(metric, stack, stack[::-1], spec, kernel="numpy")
    cross_scalar = cross_matrix(metric, stack, stack[::-1], spec, kernel="scalar")
    assert np.array_equal(cross_fused, cross_scalar)


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
@pytest.mark.parametrize("name", KERNEL_METRICS)
@given(stack=pmf_stacks())
@settings(max_examples=40, deadline=None)
def test_block_kernels_equal_fused(name: str, stack: np.ndarray) -> None:
    """The jit-able pure-Python closures (what numba compiles) reproduce
    the fused numpy kernels bit-for-bit on random stacks."""
    metric = get_metric(name)
    spec = HistogramSpec(bins=stack.shape[1])
    fused = pairwise_matrix(metric, stack, spec, kernel="numpy")
    left = np.ascontiguousarray(stack)
    block = _PY_BLOCK_KERNELS[name](left, left, spec.bin_width)
    np.fill_diagonal(block, 0.0)
    block = 0.5 * (block + block.T)
    # pairwise_matrix dedups before the block call; rebuild its scatter.
    unique, inverse = np.unique(left, axis=0, return_inverse=True)
    block_u = _PY_BLOCK_KERNELS[name](
        np.ascontiguousarray(unique), np.ascontiguousarray(unique), spec.bin_width
    )
    np.fill_diagonal(block_u, 0.0)
    block_u = 0.5 * (block_u + block_u.T)
    scattered = block_u[np.ix_(inverse.reshape(-1), inverse.reshape(-1))]
    assert np.array_equal(scattered, fused)


@pytest.mark.parametrize("name", KERNEL_METRICS)
@pytest.mark.parametrize(
    "stack",
    [
        np.zeros((3, 5)),                                      # empty bins only
        np.ones((4, 1)),                                       # single-bin pmfs
        np.eye(6)[:4],                                         # all mass in one bin
        np.array([[5e-324] * 4 + [1.0 - 4 * 5e-324]] * 3),      # denormal weights
        np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]]),        # duplicates + one-hot
    ],
    ids=["zero-rows", "single-bin", "one-hot", "denormal", "duplicate-onehot"],
)
def test_degenerate_pmfs_bit_identical(name: str, stack: np.ndarray) -> None:
    metric = get_metric(name)
    spec = HistogramSpec(bins=stack.shape[1])
    fused = pairwise_matrix(metric, stack, spec, kernel="numpy")
    scalar = pairwise_matrix(metric, stack, spec, kernel="scalar")
    assert np.array_equal(fused, scalar)
    assert np.array_equal(
        cross_matrix(metric, stack, stack, spec, kernel="numpy"),
        cross_matrix(metric, stack, stack, spec, kernel="scalar"),
    )


def test_block_self_check_passes() -> None:
    """The activation self-check the numba backend gates on: the block
    kernels are bit-identical to the fused kernels on this platform."""
    assert _self_check_blocks(_PY_BLOCK_KERNELS) == []
