"""The differential parity matrix: every kernel backend × execution backend
× metric × weighting × algorithm, bit-identical to the scalar reference.

A fast sub-matrix runs in tier-1 (kernel × metric on the small seeded
population); the full combinatorial sweep carries the ``parity`` marker and
runs in the dedicated ``kernel-parity`` CI job.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partition import Partition
from repro.engine.engine import EvaluationEngine
from repro.engine.kernels import (
    KERNEL_COUNTER_KEYS,
    available_kernel_backends,
    resolve_kernel_backend,
)
from repro.exceptions import KernelError
from repro.metrics import available_metrics

from tests.parity.conftest import (
    PARITY_CASES,
    assert_results_identical,
    build_scores,
    kernel_params,
    result_digest,
    run_audit,
)

METRICS = tuple(available_metrics())
WEIGHTINGS = ("uniform", "size")
ALGORITHMS = ("balanced", "unbalanced")
EXECUTION_BACKENDS = ("sequential", "process")


@pytest.fixture(scope="session")
def reference_run(parity_populations):
    """Memoised scalar-reference results, keyed by matrix cell."""
    cache: dict = {}

    def get(case, metric, weighting, algorithm, backend="sequential"):
        key = (case, metric, weighting, algorithm, backend)
        if key not in cache:
            population = parity_populations[case[0]]
            scores = build_scores(population, case[1])
            kwargs = {"workers": 2} if backend == "process" else {}
            cache[key] = run_audit(
                population,
                scores,
                algorithm,
                metric=metric,
                weighting=weighting,
                kernel="scalar",
                backend=backend,
                **kwargs,
            )
        return cache[key]

    return get


# ------------------------------------------------------------ fast sub-matrix
# Runs in tier-1: every kernel on every metric, one seeded population.


@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("kernel", kernel_params())
def test_kernel_backends_bit_identical(
    parity_populations, reference_run, kernel, metric
) -> None:
    case = ("small", 11)
    population = parity_populations[case[0]]
    scores = build_scores(population, case[1])
    result = run_audit(population, scores, metric=metric, kernel=kernel)
    assert_results_identical(result, reference_run(case, metric, "uniform", "balanced"))


def test_kernel_resolution_errors() -> None:
    assert resolve_kernel_backend(None) == "numpy"
    with pytest.raises(KernelError, match="unknown kernel backend"):
        resolve_kernel_backend("bogus")
    if "numba" not in available_kernel_backends():
        with pytest.raises(KernelError, match="numba"):
            resolve_kernel_backend("numba")


def test_value_cache_keys_and_counters_identical_across_kernels(
    parity_populations,
) -> None:
    """Two engines differing only in kernel backend leave behind the same
    content-addressed value-cache keys, the same cached values, and the
    same kernel effort counters — the invariant that lets the cross-job
    cache omit the backend from its keys."""
    population = parity_populations["small"]
    scores = build_scores(population, 11)
    exports = {}
    counters = {}
    def split(attribute: str) -> list:
        codes = population.partition_codes(attribute)
        return [
            Partition(np.nonzero(codes == value)[0])
            for value in np.unique(codes)
        ]

    for kernel in available_kernel_backends():
        engine = EvaluationEngine(population, scores, kernel=kernel)
        for partitions in (split("gender"), split("country")):
            engine.unfairness(partitions)
        exports[kernel] = engine.export_value_cache()
        counters[kernel] = {
            key: engine.kernel_counters().get(key, 0)
            for key in KERNEL_COUNTER_KEYS
        }
        engine.close()
    reference = exports["scalar"]
    for kernel, exported in exports.items():
        assert set(exported) == set(reference)
        for key, value in exported.items():
            assert value == reference[key], kernel
    assert counters["numpy"] == counters["scalar"]


# ------------------------------------------------------------- full matrix
# The exhaustive sweep: marked ``parity`` so tier-1 stays fast.


@pytest.mark.parity
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("weighting", WEIGHTINGS)
@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("backend", EXECUTION_BACKENDS)
@pytest.mark.parametrize("kernel", kernel_params())
def test_full_matrix_bit_identical(
    parity_populations, reference_run, kernel, backend, metric, weighting, algorithm
) -> None:
    case = ("small", 11)
    population = parity_populations[case[0]]
    scores = build_scores(population, case[1])
    kwargs = {"backend": backend}
    if backend == "process":
        kwargs["workers"] = 2
    result = run_audit(
        population,
        scores,
        algorithm,
        metric=metric,
        weighting=weighting,
        kernel=kernel,
        **kwargs,
    )
    # Full identity (value, partitioning, effort counters, digest) against
    # the scalar reference on the SAME execution backend...
    assert_results_identical(
        result, reference_run(case, metric, weighting, algorithm, backend)
    )
    # ...and value/partitioning/tie-break identity against the sequential
    # scalar reference (execution backends share results, but the process
    # pool legitimately does its value-cache bookkeeping worker-side).
    sequential = reference_run(case, metric, weighting, algorithm)
    assert result.unfairness == sequential.unfairness
    assert (
        result.partitioning.canonical_key()
        == sequential.partitioning.canonical_key()
    )


@pytest.mark.parity
@pytest.mark.parametrize("case", PARITY_CASES, ids=lambda c: c[0])
@pytest.mark.parametrize("kernel", kernel_params())
def test_all_scenarios_bit_identical(
    parity_populations, reference_run, kernel, case
) -> None:
    """Every seeded scenario of the matrix, reference vs selected kernel."""
    population = parity_populations[case[0]]
    scores = build_scores(population, case[1])
    result = run_audit(population, scores, kernel=kernel)
    reference = reference_run(case, "emd", "uniform", "balanced")
    assert result_digest(result) == result_digest(reference)
    # Tie-breaks are pinned by the canonical key inside the digest; spell
    # the headline float out too so a failure names the drift directly.
    assert result.unfairness == reference.unfairness
    assert np.array_equal(
        np.sort([p.size for p in result.partitioning]),
        np.sort([p.size for p in reference.partitioning]),
    )
