"""Unit tests for paper-style table formatting and the reference constants."""

from __future__ import annotations

import pytest

from repro.reporting.paper_reference import (
    PAPER_FUNCTIONS_BIASED,
    PAPER_FUNCTIONS_RANDOM,
    TABLE1_EMD,
    TABLE1_RUNTIME,
    TABLE2_EMD,
    TABLE2_RUNTIME,
    TABLE3_EMD,
)
from repro.reporting.tables import format_comparison_table, format_table
from repro.simulation.config import PaperConfig
from repro.simulation.runner import run_scenario
from repro.simulation.scenarios import table3_scenario


@pytest.fixture(scope="module")
def small_result():
    scenario = table3_scenario(PaperConfig(n_workers=120, seed=2))
    return run_scenario(scenario, algorithms=("balanced", "unbalanced"), seed=0)


class TestPaperReference:
    def test_tables_cover_all_paper_algorithms_and_functions(self) -> None:
        for table, functions in (
            (TABLE1_EMD, PAPER_FUNCTIONS_RANDOM),
            (TABLE1_RUNTIME, PAPER_FUNCTIONS_RANDOM),
            (TABLE2_EMD, PAPER_FUNCTIONS_RANDOM),
            (TABLE2_RUNTIME, PAPER_FUNCTIONS_RANDOM),
            (TABLE3_EMD, PAPER_FUNCTIONS_BIASED),
        ):
            assert set(table) == {
                "unbalanced",
                "r-unbalanced",
                "balanced",
                "r-balanced",
                "all-attributes",
            }
            for per_function in table.values():
                assert set(per_function) == set(functions)

    def test_headline_values_transcribed_correctly(self) -> None:
        # Spot-check the values the reproduction narrative leans on.
        assert TABLE3_EMD["balanced"]["f6"] == 0.800
        assert TABLE3_EMD["unbalanced"]["f6"] == 0.040
        assert TABLE1_EMD["unbalanced"]["f5"] == 0.257
        assert TABLE2_RUNTIME["balanced"]["f4"] == 5840.131

    def test_paper_shape_f4_f5_exceed_mixtures(self) -> None:
        # The paper's first observation, verified on its own numbers.
        for table in (TABLE1_EMD, TABLE2_EMD):
            for per_function in table.values():
                mixtures = max(per_function["f1"], per_function["f2"], per_function["f3"])
                assert per_function["f4"] > mixtures
                assert per_function["f5"] > mixtures

    def test_paper_shape_balanced_slowest(self) -> None:
        for table in (TABLE1_RUNTIME, TABLE2_RUNTIME):
            for function in PAPER_FUNCTIONS_RANDOM:
                slowest = max(table[a][function] for a in table)
                assert table["balanced"][function] == slowest


class TestFormatTable:
    def test_contains_all_cells(self, small_result) -> None:
        text = format_table(small_result, "unfairness", title="Table")
        assert text.startswith("Table")
        for algorithm in ("balanced", "unbalanced"):
            assert algorithm in text
        for function in ("f6", "f7", "f8", "f9"):
            assert function in text

    def test_callable_extractor(self, small_result) -> None:
        text = format_table(small_result, lambda row: float(row.n_partitions))
        assert "balanced" in text

    def test_precision(self, small_result) -> None:
        text = format_table(small_result, "unfairness", precision=1)
        row = next(line for line in text.splitlines() if line.lstrip().startswith("balanced"))
        cells = row.split()[1:]
        assert all(len(cell.split(".")[-1]) == 1 for cell in cells)


class TestFormatComparisonTable:
    def test_measured_and_paper_side_by_side(self, small_result) -> None:
        text = format_comparison_table(small_result, TABLE3_EMD)
        assert "(" in text and ")" in text
        assert "0.800" in text  # the paper's f6 balanced value

    def test_missing_reference_shows_na(self, small_result) -> None:
        text = format_comparison_table(small_result, {"balanced": {}})
        assert "(n/a)" in text
