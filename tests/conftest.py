"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attributes import (
    CategoricalAttribute,
    IntegerAttribute,
    ObservedAttribute,
)
from repro.core.histogram import HistogramSpec
from repro.core.population import Population
from repro.core.schema import WorkerSchema
from repro.simulation.generator import generate_paper_population, toy_population


@pytest.fixture()
def small_schema() -> WorkerSchema:
    """Two categorical protected attributes, one integer, one observed."""
    return WorkerSchema(
        protected=(
            CategoricalAttribute("gender", ("Male", "Female")),
            CategoricalAttribute("country", ("America", "India", "Other")),
            IntegerAttribute("age", 18, 67, buckets=5),
        ),
        observed=(ObservedAttribute("skill", 0.0, 1.0),),
    )


@pytest.fixture()
def small_population(small_schema: WorkerSchema) -> Population:
    """A fixed 12-worker population for deterministic assertions."""
    return Population(
        small_schema,
        protected={
            "gender": np.array([0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1]),
            "country": np.array([0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2]),
            "age": np.array([20, 30, 40, 50, 60, 25, 35, 45, 55, 65, 22, 33]),
        },
        observed={
            "skill": np.array(
                [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05, 0.95, 0.45]
            )
        },
    )


@pytest.fixture(scope="session")
def paper_population_small() -> Population:
    """A 300-worker population under the paper's schema (session-cached)."""
    return generate_paper_population(300, seed=7)


@pytest.fixture()
def toy() -> Population:
    """The Figure 1 toy population."""
    return toy_population()


@pytest.fixture()
def hist_spec() -> HistogramSpec:
    return HistogramSpec(bins=10)
