"""Unit tests for attribute-importance ranking."""

from __future__ import annotations

import pytest

from repro.analysis.importance import attribute_importance
from repro.core.partition import Partition
from repro.core.population import Population
from repro.core.splitting import worst_attribute
from repro.core.unfairness import UnfairnessEvaluator
from repro.marketplace.biased import paper_biased_functions
from repro.marketplace.scoring import paper_functions


class TestAttributeImportance:
    def test_one_entry_per_protected_attribute(
        self, paper_population_small: Population
    ) -> None:
        scores = paper_functions()["f1"](paper_population_small)
        ranking = attribute_importance(paper_population_small, scores)
        assert {r.attribute for r in ranking} == set(
            paper_population_small.schema.protected_names
        )

    def test_sorted_most_unfair_first(
        self, paper_population_small: Population
    ) -> None:
        scores = paper_biased_functions()["f6"](paper_population_small)
        ranking = attribute_importance(paper_population_small, scores)
        values = [r.unfairness for r in ranking]
        assert values == sorted(values, reverse=True)

    def test_planted_attribute_ranks_first(
        self, paper_population_small: Population
    ) -> None:
        scores = paper_biased_functions()["f6"](paper_population_small)
        ranking = attribute_importance(paper_population_small, scores)
        assert ranking[0].attribute == "gender"
        assert ranking[0].unfairness == pytest.approx(0.8, abs=0.05)
        assert ranking[0].n_groups == 2
        # Gender dwarfs every other attribute on f6.
        assert ranking[0].unfairness > 3 * ranking[1].unfairness

    def test_top_entry_matches_worst_attribute(
        self, paper_population_small: Population
    ) -> None:
        scores = paper_biased_functions()["f7"](paper_population_small)
        ranking = attribute_importance(paper_population_small, scores)
        evaluator = UnfairnessEvaluator(paper_population_small, scores)
        choice = worst_attribute(
            paper_population_small,
            [Partition(paper_population_small.all_indices())],
            list(paper_population_small.schema.protected_names),
            evaluator,
        )
        assert ranking[0].attribute == choice.attribute
        assert ranking[0].unfairness == pytest.approx(choice.score)

    def test_weighted_variant_runs(self, paper_population_small: Population) -> None:
        scores = paper_biased_functions()["f8"](paper_population_small)
        uniform = attribute_importance(paper_population_small, scores)
        weighted = attribute_importance(
            paper_population_small, scores, weighting="size"
        )
        assert {r.attribute for r in uniform} == {r.attribute for r in weighted}

    def test_str(self, paper_population_small: Population) -> None:
        scores = paper_functions()["f1"](paper_population_small)
        entry = attribute_importance(paper_population_small, scores)[0]
        assert entry.attribute in str(entry)
