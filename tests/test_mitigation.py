"""Tests for the pluggable fair re-ranking repair suite (:mod:`repro.repair`).

Covers the strategy registry, FA*IR's staggered quota tables (property:
every prefix of the repaired ranking satisfies the adjusted quota), the
deterministic re-rankers' representation invariants and utility-loss
behaviour, the quantile strategy's parity with :func:`repair_scores`, and
the :func:`repair_ranking` orchestrator's pricing and validation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import get_algorithm
from repro.core.partition import Partition, Partitioning
from repro.core.population import Population
from repro.exceptions import RepairError
from repro.marketplace.biased import paper_biased_functions
from repro.repair import (
    DetRerank,
    FairTopK,
    QuantileRepair,
    RepairResult,
    RepairStrategy,
    available_strategies,
    get_strategy,
    quota_table,
    ranked_order,
    repair_ranking,
    repair_scores,
)


@pytest.fixture()
def audited(paper_population_small: Population):
    """A population, biased scores and the partitioning an audit found."""
    scores = paper_biased_functions()["f6"](paper_population_small)
    result = get_algorithm("balanced").run(paper_population_small, scores)
    return paper_population_small, scores, result.partitioning


def _grouped(codes: np.ndarray) -> Partitioning:
    """Partitioning with one partition per distinct code value."""
    return Partitioning(
        [Partition(np.flatnonzero(codes == g)) for g in np.unique(codes)],
        population_size=codes.shape[0],
    )


def _biased_binary(n: int = 100, minority: int = 40, seed: int = 0):
    """Scores uniformly drawn then depressed for a binary minority group."""
    rng = np.random.default_rng(seed)
    codes = np.array([0] * (n - minority) + [1] * minority)
    scores = rng.uniform(0.5, 1.0, n)
    scores[codes == 1] -= 0.45
    return scores, codes, _grouped(codes)


def _ndcg(scores: np.ndarray, order: np.ndarray, k: int) -> float:
    def dcg(gains: np.ndarray) -> float:
        return float(np.sum(gains / np.log2(np.arange(gains.size) + 2.0)))

    return dcg(scores[order[:k]]) / dcg(scores[ranked_order(scores)[:k]])


# A compact hypothesis profile: group assignments over 2-5 groups, scores
# drawn from the seed, k anywhere in the ranking.
random_cases = st.tuples(
    st.integers(min_value=0, max_value=2**32 - 1),  # rng seed
    st.integers(min_value=2, max_value=5),  # n_groups
    st.integers(min_value=12, max_value=60),  # population size
)


class TestRegistry:
    def test_all_three_strategies_registered(self) -> None:
        assert {"det_rerank", "fair_topk", "quantile"} <= set(
            available_strategies()
        )

    def test_available_is_sorted(self) -> None:
        assert list(available_strategies()) == sorted(available_strategies())

    def test_unknown_strategy_lists_available(self) -> None:
        with pytest.raises(RepairError, match="fair_topk"):
            get_strategy("nope")

    def test_options_reach_the_constructor(self) -> None:
        strategy = get_strategy("det_rerank", variant="cons")
        assert isinstance(strategy, DetRerank)
        assert strategy.variant == "cons"

    def test_instances_pass_through(self) -> None:
        strategy = FairTopK()
        assert get_strategy(strategy) is strategy

    def test_unknown_variant_rejected(self) -> None:
        with pytest.raises(RepairError, match="variant"):
            DetRerank(variant="liberal")


class TestRankedOrderAndReassign:
    def test_descending_with_index_tie_break(self) -> None:
        scores = np.array([0.5, 0.9, 0.5, 0.1])
        np.testing.assert_array_equal(ranked_order(scores), [1, 0, 2, 3])

    def test_reassign_preserves_score_multiset(self) -> None:
        rng = np.random.default_rng(3)
        scores = rng.uniform(size=40)
        order_after = rng.permutation(40)
        repaired = RepairStrategy.reassign_scores(scores, order_after)
        np.testing.assert_allclose(np.sort(repaired), np.sort(scores))

    def test_reassign_realises_the_new_order(self) -> None:
        # Rank r of the new order must hold the r-th highest original score,
        # so ranking the repaired scores yields order_after back (up to ties).
        rng = np.random.default_rng(4)
        scores = rng.uniform(size=40)  # continuous draws: no ties
        order_after = rng.permutation(40)
        repaired = RepairStrategy.reassign_scores(scores, order_after)
        np.testing.assert_array_equal(ranked_order(repaired), order_after)


class TestQuotaTable:
    @given(random_cases, st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=30, deadline=None)
    def test_staggered_table_invariants(self, case, alpha) -> None:
        seed, n_groups, n = case
        rng = np.random.default_rng(seed)
        sizes = rng.multinomial(n - n_groups, np.ones(n_groups) / n_groups) + 1
        proportions = sizes / n
        table = quota_table(n, proportions, alpha, group_sizes=sizes)
        assert table.shape == (n_groups, n)
        assert (table >= 0).all()
        # Monotone per group, and at most ONE total increment per rank —
        # the staggering that makes the table greedily satisfiable.
        diffs = np.diff(np.hstack([np.zeros((n_groups, 1), dtype=table.dtype), table]))
        assert (diffs >= 0).all()
        assert (diffs.sum(axis=0) <= 1).all()
        # Never demands more of a group than exists, nor more than the prefix.
        assert (table <= sizes[:, None]).all()
        assert (table.sum(axis=0) <= np.arange(1, n + 1)).all()

    def test_tiny_alpha_never_binds(self) -> None:
        # With alpha below the all-failures tail P(X=0) = 0.5^t at every
        # t <= k, each binomial quantile stays zero: a no-op table.
        table = quota_table(20, np.array([0.5, 0.5]), 1e-12)
        assert not table.any()


class TestFairTopK:
    @given(random_cases)
    @settings(max_examples=30, deadline=None)
    def test_every_prefix_satisfies_the_quota(self, case) -> None:
        seed, n_groups, n = case
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, n_groups, n)
        codes[:n_groups] = np.arange(n_groups)  # every group non-empty
        scores = rng.uniform(size=n)
        partitioning = _grouped(codes)
        k = int(rng.integers(1, n + 1))
        min_proportion, alpha = 1.0, 0.5
        order, repaired = FairTopK().repair(
            scores, partitioning, k=k, min_proportion=min_proportion,
            alpha=alpha, amount=1.0,
        )
        np.testing.assert_array_equal(np.sort(order), np.arange(n))
        # Recompute the strategy's own table and check the prefix property.
        sizes = np.bincount(codes, minlength=n_groups)
        table = quota_table(
            k, min_proportion * sizes / n, alpha, group_sizes=sizes
        )
        ranked_codes = codes[order]
        counts = np.zeros(n_groups, dtype=np.int64)
        for t in range(k):
            counts[ranked_codes[t]] += 1
            assert (counts >= table[:, t]).all(), f"quota violated at rank {t + 1}"

    def test_unconstrained_prefix_is_score_order(self) -> None:
        # Where no quota binds, FA*IR must emit the best remaining worker.
        scores, _, partitioning = _biased_binary()
        order, _ = FairTopK().repair(
            scores, partitioning, k=scores.size, min_proportion=0.8,
            alpha=1e-9, amount=1.0,
        )
        np.testing.assert_array_equal(order, ranked_order(scores))

    def test_binding_quota_promotes_the_minority(self) -> None:
        scores, codes, partitioning = _biased_binary()
        order, _ = FairTopK().repair(
            scores, partitioning, k=scores.size, min_proportion=1.0,
            alpha=0.5, amount=1.0,
        )
        k = 20
        before = int(codes[ranked_order(scores)[:k]].sum())
        after = int(codes[order[:k]].sum())
        assert after > before  # minority representation in the top-20 grew

    def test_partial_k_keeps_tail_in_score_order(self) -> None:
        scores, _, partitioning = _biased_binary()
        k = 30
        order, _ = FairTopK().repair(
            scores, partitioning, k=k, min_proportion=1.0, alpha=0.5, amount=1.0,
        )
        tail = order[k:]
        # The unconstrained tail preserves relative score order.
        assert (np.diff(scores[tail]) <= 1e-12).all()


class TestDetRerank:
    @staticmethod
    def _check_floors(variant: str, seed: int, n_groups: int, n: int) -> None:
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, n_groups, n)
        codes[:n_groups] = np.arange(n_groups)
        scores = rng.uniform(size=n)
        partitioning = _grouped(codes)
        min_proportion = float(rng.uniform(0.3, 1.0))
        order, _ = DetRerank(variant=variant).repair(
            scores, partitioning, k=n, min_proportion=min_proportion,
            alpha=0.1, amount=1.0,
        )
        np.testing.assert_array_equal(np.sort(order), np.arange(n))
        sizes = np.bincount(codes, minlength=n_groups)
        proportions = min_proportion * sizes / n
        ranked_codes = codes[order]
        counts = np.zeros(n_groups, dtype=np.int64)
        for t in range(1, n + 1):
            counts[ranked_codes[t - 1]] += 1
            floors = np.floor(proportions * t).astype(np.int64)
            np.minimum(floors, sizes, out=floors)
            assert (counts >= floors).all(), f"floor violated at rank {t}"

    @given(random_cases)
    @settings(max_examples=30, deadline=None)
    def test_cons_minimum_representation_holds_at_every_prefix(
        self, case
    ) -> None:
        # DetConstSort's anticipatory due-slot picking keeps every group at
        # or above floor(p_g * t) for any number of groups.
        seed, n_groups, n = case
        self._check_floors("cons", seed, n_groups, n)

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=12, max_value=60),
    )
    @settings(max_examples=30, deadline=None)
    def test_greedy_minimum_representation_holds_for_few_groups(
        self, seed, n_groups, n
    ) -> None:
        # DetGreedy only guarantees feasibility up to 3 groups (Geyik et
        # al.): with more, several floors can come due at the same rank
        # while only one slot is available.
        self._check_floors("greedy", seed, n_groups, n)

    @pytest.mark.parametrize("variant", ["greedy", "cons"])
    def test_tightening_never_gains_utility(self, variant) -> None:
        # NDCG at the tightest constraint cannot exceed the loosest — the
        # coarse monotonicity that survives both variants (stepwise NDCG is
        # NOT monotone in min_proportion; see docs/mitigation.md).
        scores, _, partitioning = _biased_binary()
        ndcgs = {}
        for min_proportion in (0.2, 1.0):
            order, _ = DetRerank(variant=variant).repair(
                scores, partitioning, k=scores.size,
                min_proportion=min_proportion, alpha=0.1, amount=1.0,
            )
            ndcgs[min_proportion] = _ndcg(scores, order, scores.size)
        assert ndcgs[1.0] <= ndcgs[0.2] + 1e-9

    def test_variants_diverge_on_biased_input(self) -> None:
        scores, _, partitioning = _biased_binary()
        orders = {
            variant: DetRerank(variant=variant).repair(
                scores, partitioning, k=scores.size, min_proportion=0.8,
                alpha=0.1, amount=1.0,
            )[0]
            for variant in ("greedy", "cons")
        }
        assert not np.array_equal(orders["greedy"], orders["cons"])

    def test_repr_names_the_variant(self) -> None:
        assert "cons" in repr(DetRerank(variant="cons"))


class TestQuantileStrategy:
    def test_parity_with_repair_scores(self, audited) -> None:
        _, scores, partitioning = audited
        for amount in (0.4, 1.0):
            order, repaired = QuantileRepair().repair(
                scores, partitioning, k=scores.size, min_proportion=0.8,
                alpha=0.1, amount=amount,
            )
            np.testing.assert_array_equal(
                repaired, repair_scores(scores, partitioning, amount=amount)
            )
            np.testing.assert_array_equal(order, ranked_order(repaired))


class TestRepairRanking:
    def test_prices_on_the_audited_partitioning(self, audited) -> None:
        population, scores, partitioning = audited
        result = repair_ranking(population, scores, partitioning, "quantile")
        assert isinstance(result, RepairResult)
        assert result.unfairness_after < result.unfairness_before
        assert result.improvement > 0
        assert 0.0 < result.ndcg_at_k <= 1.0 + 1e-9
        assert 0.0 < result.retained_score_mass <= 1.0 + 1e-9
        assert result.k == population.size
        np.testing.assert_array_equal(
            np.sort(result.order_after), np.arange(population.size)
        )

    def test_exposure_deltas_cover_every_group(self, audited) -> None:
        population, scores, partitioning = audited
        result = repair_ranking(population, scores, partitioning, "det_rerank")
        assert len(result.exposure_delta) == partitioning.k
        assert (
            set(result.exposure_delta)
            == set(result.exposure_before)
            == set(result.exposure_after)
        )
        for label, delta in result.exposure_delta.items():
            assert delta == pytest.approx(
                result.exposure_after[label] - result.exposure_before[label]
            )

    def test_repeated_runs_are_bit_stable(self, audited) -> None:
        population, scores, partitioning = audited
        first, second = (
            repair_ranking(
                population, scores, partitioning, "fair_topk",
                min_proportion=1.0, alpha=0.5,
            )
            for _ in range(2)
        )
        assert first.ranking_digest() == second.ranking_digest()
        np.testing.assert_array_equal(first.order_after, second.order_after)
        np.testing.assert_array_equal(
            first.repaired_scores, second.repaired_scores
        )

    def test_variant_is_recorded_in_params(self, audited) -> None:
        population, scores, partitioning = audited
        result = repair_ranking(
            population, scores, partitioning, "det_rerank",
            strategy_options={"variant": "cons"},
        )
        assert result.params["variant"] == "cons"

    def test_as_dict_is_json_safe(self, audited) -> None:
        import json

        population, scores, partitioning = audited
        result = repair_ranking(population, scores, partitioning, "quantile")
        payload = result.as_dict()
        assert "order_after" not in payload
        json.dumps(payload)  # must not raise
        with_arrays = result.as_dict(include_arrays=True)
        assert with_arrays["order_after"] == [int(w) for w in result.order_after]
        json.dumps(with_arrays)

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({"k": 0}, "k must be"),
            ({"k": 10_000}, "k must be"),
            ({"min_proportion": 0.0}, "min_proportion"),
            ({"min_proportion": 1.5}, "min_proportion"),
            ({"alpha": 0.0}, "alpha"),
            ({"alpha": 1.0}, "alpha"),
            ({"amount": -0.1}, "amount"),
        ],
    )
    def test_invalid_parameters_rejected(self, audited, kwargs, match) -> None:
        population, scores, partitioning = audited
        with pytest.raises(RepairError, match=match):
            repair_ranking(population, scores, partitioning, "quantile", **kwargs)

    def test_non_finite_scores_rejected(self, audited) -> None:
        population, scores, partitioning = audited
        poisoned = scores.copy()
        poisoned[0] = np.nan
        with pytest.raises(RepairError, match="non-finite"):
            repair_ranking(population, poisoned, partitioning)

    def test_shape_mismatch_rejected(self, audited) -> None:
        population, scores, partitioning = audited
        with pytest.raises(RepairError, match="shape"):
            repair_ranking(population, scores[:-1], partitioning)

    def test_broken_strategy_caught(self, audited) -> None:
        population, scores, partitioning = audited

        class Broken(RepairStrategy):
            name = "broken"

            def repair(self, scores, partitioning, **_):
                order = np.zeros(scores.shape[0], dtype=np.int64)  # not a perm
                return order, scores.copy()

        with pytest.raises(RepairError, match="permutation"):
            repair_ranking(population, scores, partitioning, Broken())
