"""Unit tests for the exhaustive optimum and the search-space counter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import count_split_trees, get_algorithm
from repro.core.population import Population
from repro.exceptions import BudgetExceededError
from repro.simulation.generator import TOY_OPTIMAL_GROUPS


class TestExhaustive:
    def test_finds_figure1_optimum(self, toy: Population) -> None:
        scores = toy.observed_column("qualification")
        result = get_algorithm("exhaustive").run(toy, scores)
        labels = sorted(p.label(toy.schema) for p in result.partitioning)
        assert labels == sorted(TOY_OPTIMAL_GROUPS)

    def test_optimum_dominates_every_heuristic(self, toy: Population) -> None:
        scores = toy.observed_column("qualification")
        optimum = get_algorithm("exhaustive").run(toy, scores).unfairness
        for name in ("balanced", "unbalanced", "all-attributes", "single-attribute"):
            heuristic = get_algorithm(name).run(toy, scores).unfairness
            assert heuristic <= optimum + 1e-9

    def test_optimum_dominates_random_baselines(self, toy: Population) -> None:
        scores = toy.observed_column("qualification")
        optimum = get_algorithm("exhaustive").run(toy, scores).unfairness
        for seed in range(5):
            for name in ("r-balanced", "r-unbalanced"):
                value = get_algorithm(name).run(toy, scores, rng=seed).unfairness
                assert value <= optimum + 1e-9

    def test_budget_exceeded_raises(self, toy: Population) -> None:
        scores = toy.observed_column("qualification")
        with pytest.raises(BudgetExceededError) as excinfo:
            get_algorithm("exhaustive", budget=3).run(toy, scores)
        assert excinfo.value.budget == 3

    def test_invalid_budget_rejected(self) -> None:
        with pytest.raises(ValueError, match="positive"):
            get_algorithm("exhaustive", budget=0)

    def test_single_attribute_space(self, small_population: Population) -> None:
        # With one splittable attribute left out of the schema the space is
        # tiny; the optimum must be either the root or the full split.
        males_only = small_population.subset(np.arange(6))
        scores = males_only.observed_column("skill")
        result = get_algorithm("exhaustive").run(males_only, scores)
        assert result.partitioning.population_size == 6

    def test_deduplicates_equivalent_trees(self, small_population: Population) -> None:
        # Splitting on gender then country and country then gender induce
        # the same cells; the dedup keeps the candidate count well below the
        # naive tree count.
        scores = small_population.observed_column("skill")
        result = get_algorithm("exhaustive").run(small_population, scores)
        naive_tree_count = count_split_trees([2, 3, 5])
        assert result.n_evaluations < naive_tree_count


class TestCountSplitTrees:
    def test_single_attribute(self) -> None:
        # Leaf, or one split on the attribute: 2 partitionings.
        assert count_split_trees([2]) == 2
        assert count_split_trees([5]) == 2

    def test_two_binary_attributes(self) -> None:
        # T({2,2}) = 1 + T({2})^2 + T({2})^2 = 1 + 4 + 4 = 9.
        assert count_split_trees([2, 2]) == 9

    def test_mixed_cardinalities(self) -> None:
        # T({2,3}) = 1 + T({3})^2 + T({2})^3 = 1 + 4 + 8 = 13.
        assert count_split_trees([2, 3]) == 13

    def test_growth_is_explosive(self) -> None:
        small = count_split_trees([2, 3, 5])
        large = count_split_trees([2, 3, 5, 3, 4, 5])  # the paper's setting
        assert large > small ** 3
        assert large > 10 ** 100  # "failed to terminate after two days"

    def test_rejects_trivial_cardinality(self) -> None:
        with pytest.raises(ValueError, match=">= 2"):
            count_split_trees([1, 2])
