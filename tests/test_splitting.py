"""Unit tests for split / worstAttribute machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.histogram import HistogramSpec
from repro.core.partition import Partition
from repro.core.population import Population
from repro.core.splitting import (
    split_partition,
    split_partitions,
    worst_attribute,
    worst_attribute_local,
)
from repro.core.unfairness import UnfairnessEvaluator
from repro.exceptions import PartitioningError


@pytest.fixture()
def evaluator(small_population: Population) -> UnfairnessEvaluator:
    scores = small_population.observed_column("skill")
    return UnfairnessEvaluator(small_population, scores, HistogramSpec(bins=10))


class TestSplitPartition:
    def test_split_by_gender(self, small_population: Population) -> None:
        root = Partition(small_population.all_indices())
        children = split_partition(small_population, root, "gender")
        assert len(children) == 2
        assert [c.size for c in children] == [6, 6]
        assert children[0].constraints == (("gender", 0),)
        assert children[1].constraints == (("gender", 1),)

    def test_split_preserves_members(self, small_population: Population) -> None:
        root = Partition(small_population.all_indices())
        children = split_partition(small_population, root, "country")
        combined = np.sort(np.concatenate([c.indices for c in children]))
        assert combined.tolist() == list(range(12))

    def test_split_drops_empty_cells(self, small_population: Population) -> None:
        # Only males: gender split yields a single non-empty child.
        males = Partition(np.arange(6))
        children = split_partition(small_population, males, "gender")
        assert len(children) == 1
        assert children[0].size == 6

    def test_split_on_already_constrained_attribute_rejected(
        self, small_population: Population
    ) -> None:
        partition = Partition(np.arange(6), (("gender", 0),))
        with pytest.raises(PartitioningError, match="already constrained"):
            split_partition(small_population, partition, "gender")

    def test_split_extends_constraint_path(self, small_population: Population) -> None:
        males = Partition(np.arange(6), (("gender", 0),))
        children = split_partition(small_population, males, "country")
        assert all(c.constraints[0] == ("gender", 0) for c in children)
        assert [c.constraints[1] for c in children] == [
            ("country", 0),
            ("country", 1),
            ("country", 2),
        ]

    def test_split_partitions_splits_every_group(
        self, small_population: Population
    ) -> None:
        root = Partition(small_population.all_indices())
        by_gender = split_partition(small_population, root, "gender")
        all_cells = split_partitions(small_population, by_gender, "country")
        assert len(all_cells) == 6
        assert sum(c.size for c in all_cells) == 12


class TestWorstAttribute:
    def test_picks_attribute_with_highest_average_distance(
        self, small_population: Population, evaluator: UnfairnessEvaluator
    ) -> None:
        # Skill correlates perfectly with gender in the fixture (males high,
        # females low except worker 10), so gender must beat country.
        root = Partition(small_population.all_indices())
        choice = worst_attribute(
            small_population, [root], ["gender", "country"], evaluator
        )
        assert choice.attribute == "gender"
        assert choice.score == evaluator.unfairness(choice.children)

    def test_empty_candidates_rejected(
        self, small_population: Population, evaluator: UnfairnessEvaluator
    ) -> None:
        root = Partition(small_population.all_indices())
        with pytest.raises(PartitioningError, match="no candidate"):
            worst_attribute(small_population, [root], [], evaluator)

    def test_deterministic_tie_break_on_candidate_order(
        self, small_population: Population, evaluator: UnfairnessEvaluator
    ) -> None:
        root = Partition(small_population.all_indices())
        first = worst_attribute(
            small_population, [root], ["gender", "country", "age"], evaluator
        )
        second = worst_attribute(
            small_population, [root], ["gender", "country", "age"], evaluator
        )
        assert first.attribute == second.attribute
        assert first.score == second.score

    def test_children_cover_population(
        self, small_population: Population, evaluator: UnfairnessEvaluator
    ) -> None:
        root = Partition(small_population.all_indices())
        choice = worst_attribute(
            small_population, [root], ["country"], evaluator
        )
        assert sum(c.size for c in choice.children) == small_population.size


class TestWorstAttributeLocal:
    def test_score_is_union_average_by_default(
        self, small_population: Population, evaluator: UnfairnessEvaluator
    ) -> None:
        root = Partition(small_population.all_indices())
        by_gender = split_partition(small_population, root, "gender")
        males, females = by_gender
        choice = worst_attribute_local(
            small_population, males, [females], ["country"], evaluator
        )
        assert choice.attribute == "country"
        expected = evaluator.union_average(choice.children, [females])
        assert choice.score == pytest.approx(expected)

    def test_cross_only_variant(
        self, small_population: Population, evaluator: UnfairnessEvaluator
    ) -> None:
        root = Partition(small_population.all_indices())
        males, females = split_partition(small_population, root, "gender")
        union_choice = worst_attribute_local(
            small_population, males, [females], ["country", "age"], evaluator
        )
        cross_choice = worst_attribute_local(
            small_population,
            males,
            [females],
            ["country", "age"],
            evaluator,
            cross_only=True,
        )
        expected = evaluator.cross_average(cross_choice.children, [females])
        assert cross_choice.score == pytest.approx(expected)
        # Both variants still return a legal split of the male partition.
        for choice in (union_choice, cross_choice):
            assert sum(c.size for c in choice.children) == males.size

    def test_empty_candidates_rejected(
        self, small_population: Population, evaluator: UnfairnessEvaluator
    ) -> None:
        root = Partition(small_population.all_indices())
        with pytest.raises(PartitioningError, match="no candidates"):
            worst_attribute_local(small_population, root, [], [], evaluator)
