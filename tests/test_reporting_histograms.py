"""Unit tests for ASCII histogram rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.histogram import HistogramSpec
from repro.core.population import Population
from repro.exceptions import MetricError
from repro.marketplace.biased import paper_biased_functions
from repro.reporting.histograms import render_histogram, render_partition_histograms

SPEC = HistogramSpec(bins=4)


class TestRenderHistogram:
    def test_one_line_per_bin(self) -> None:
        text = render_histogram(np.array([1, 2, 3, 4]), SPEC)
        assert len(text.splitlines()) == 4

    def test_fullest_bin_spans_width(self) -> None:
        text = render_histogram(np.array([0, 0, 0, 10]), SPEC, width=10)
        last = text.splitlines()[-1]
        assert "█" * 10 in last

    def test_empty_bins_have_no_bar(self) -> None:
        text = render_histogram(np.array([0, 5, 0, 0]), SPEC)
        first = text.splitlines()[0]
        assert "█" not in first and "▏" not in first

    def test_counts_shown_by_default(self) -> None:
        text = render_histogram(np.array([7, 0, 0, 3]), SPEC)
        assert " 7" in text.splitlines()[0]
        assert text.splitlines()[-1].endswith(" 3")

    def test_counts_hidden_on_request(self) -> None:
        text = render_histogram(np.array([7, 0, 0, 3]), SPEC, show_counts=False)
        assert not text.splitlines()[0].rstrip().endswith("7")

    def test_bin_labels_cover_range(self) -> None:
        text = render_histogram(np.zeros(4), SPEC)
        assert text.startswith("[0.00, 0.25)")
        assert "[0.75, 1.00]" in text

    def test_all_zero_histogram_renders(self) -> None:
        text = render_histogram(np.zeros(4), SPEC)
        assert len(text.splitlines()) == 4

    def test_wrong_shape_rejected(self) -> None:
        with pytest.raises(MetricError, match="expected"):
            render_histogram(np.zeros(3), SPEC)

    def test_negative_counts_rejected(self) -> None:
        with pytest.raises(MetricError, match="non-negative"):
            render_histogram(np.array([1, -1, 0, 0]), SPEC)

    def test_partial_blocks_for_fractions(self) -> None:
        text = render_histogram(np.array([1, 16, 0, 0]), SPEC, width=8)
        first = text.splitlines()[0]
        # 1/16 of 8 cells = 0.5 cells -> a partial block character.
        assert any(block in first for block in "▏▎▍▌▋▊▉")


class TestRenderPartitionHistograms:
    def test_figure1_style_output(self, paper_population_small: Population) -> None:
        scores = paper_biased_functions()["f6"](paper_population_small)
        result = get_algorithm("balanced").run(paper_population_small, scores)
        text = render_partition_histograms(
            paper_population_small, scores, result.partitioning
        )
        assert "gender=Male" in text
        assert "gender=Female" in text
        assert "█" in text

    def test_largest_partition_first(self, paper_population_small: Population) -> None:
        scores = paper_biased_functions()["f6"](paper_population_small)
        result = get_algorithm("balanced").run(paper_population_small, scores)
        text = render_partition_histograms(
            paper_population_small, scores, result.partitioning
        )
        sizes = [
            int(line.split("n=")[1].rstrip(")"))
            for line in text.splitlines()
            if "(n=" in line
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_truncates_to_max_partitions(
        self, paper_population_small: Population
    ) -> None:
        scores = np.random.default_rng(0).uniform(size=paper_population_small.size)
        result = get_algorithm("all-attributes").run(paper_population_small, scores)
        text = render_partition_histograms(
            paper_population_small, scores, result.partitioning, max_partitions=3
        )
        assert "smaller partitions not shown" in text
        assert text.count("(n=") == 3

    def test_custom_spec_bins(self, paper_population_small: Population) -> None:
        scores = paper_biased_functions()["f6"](paper_population_small)
        result = get_algorithm("balanced").run(
            paper_population_small, scores, hist_spec=HistogramSpec(bins=5)
        )
        text = render_partition_histograms(
            paper_population_small,
            scores,
            result.partitioning,
            spec=HistogramSpec(bins=5),
        )
        male_block = text.split("\n\n")[0]
        assert len(male_block.splitlines()) == 1 + 5  # label + 5 bins
