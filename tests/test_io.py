"""Unit tests for persistence (CSV populations, JSON results)."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.population import Population
from repro.exceptions import PopulationError, SchemaError
from repro.io.serialization import (
    load_experiment_rows,
    load_population,
    save_experiment_result,
    save_population,
    schema_from_dict,
    schema_to_dict,
)
from repro.simulation.config import PaperConfig, paper_schema
from repro.simulation.runner import run_scenario
from repro.simulation.scenarios import table3_scenario


class TestSchemaRoundTrip:
    def test_paper_schema_round_trips(self) -> None:
        schema = paper_schema()
        restored = schema_from_dict(schema_to_dict(schema))
        assert restored == schema

    def test_bucket_counts_survive(self) -> None:
        schema = paper_schema(year_of_birth_buckets=3)
        restored = schema_from_dict(schema_to_dict(schema))
        assert restored.protected_attribute("year_of_birth").cardinality == 3

    def test_unknown_kind_rejected(self) -> None:
        with pytest.raises(SchemaError, match="unknown protected attribute kind"):
            schema_from_dict(
                {
                    "protected": [{"kind": "mystery", "name": "x"}],
                    "observed": [{"name": "skill", "low": 0, "high": 1}],
                }
            )


class TestPopulationRoundTrip:
    def test_round_trip_exact(self, tmp_path: Path, paper_population_small: Population) -> None:
        path = tmp_path / "workers.csv"
        save_population(paper_population_small, path)
        restored = load_population(path)
        assert restored.size == paper_population_small.size
        for name in paper_population_small.schema.protected_names:
            np.testing.assert_array_equal(
                restored.protected_column(name),
                paper_population_small.protected_column(name),
            )
        for name in paper_population_small.schema.observed_names:
            np.testing.assert_allclose(
                restored.observed_column(name),
                paper_population_small.observed_column(name),
            )

    def test_sidecar_written(self, tmp_path: Path, toy: Population) -> None:
        path = tmp_path / "toy.csv"
        save_population(toy, path)
        assert (tmp_path / "toy.csv.schema.json").exists()

    def test_load_with_explicit_schema(self, tmp_path: Path, toy: Population) -> None:
        path = tmp_path / "toy.csv"
        save_population(toy, path)
        (tmp_path / "toy.csv.schema.json").unlink()
        restored = load_population(path, schema=toy.schema)
        assert restored.size == toy.size

    def test_missing_sidecar_without_schema_raises(
        self, tmp_path: Path, toy: Population
    ) -> None:
        path = tmp_path / "toy.csv"
        save_population(toy, path)
        (tmp_path / "toy.csv.schema.json").unlink()
        with pytest.raises(PopulationError, match="no schema"):
            load_population(path)

    def test_header_mismatch_rejected(self, tmp_path: Path, toy: Population) -> None:
        path = tmp_path / "bad.csv"
        path.write_text("wrong,header\n1,2\n")
        with pytest.raises(PopulationError, match="do not match"):
            load_population(path, schema=toy.schema)

    def test_empty_file_rejected(self, tmp_path: Path, toy: Population) -> None:
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(PopulationError, match="empty"):
            load_population(path, schema=toy.schema)

    def test_header_only_rejected(self, tmp_path: Path, toy: Population) -> None:
        path = tmp_path / "headeronly.csv"
        path.write_text("gender,language,qualification\n")
        with pytest.raises(PopulationError, match="no workers"):
            load_population(path, schema=toy.schema)


class TestAuditReportExport:
    def test_dict_carries_headline_fields(self, paper_population_small) -> None:
        import json

        from repro.core.audit import FairnessAuditor
        from repro.io.serialization import audit_report_to_dict, save_audit_report
        from repro.marketplace.biased import paper_biased_functions

        report = FairnessAuditor(paper_population_small).audit(
            paper_biased_functions()["f6"], algorithm="balanced"
        )
        payload = audit_report_to_dict(report)
        assert payload["algorithm"] == "balanced"
        assert payload["unfairness"] == pytest.approx(report.unfairness)
        assert payload["attributes_used"] == ["gender"]
        assert len(payload["groups"]) == 2
        assert len(payload["pairwise_distances"]) == 2
        json.dumps(payload)  # must be JSON-serialisable as-is

    def test_save_audit_report(self, tmp_path: Path, paper_population_small) -> None:
        import json

        from repro.core.audit import FairnessAuditor
        from repro.io.serialization import save_audit_report
        from repro.marketplace.biased import paper_biased_functions

        report = FairnessAuditor(paper_population_small).audit(
            paper_biased_functions()["f7"]
        )
        path = tmp_path / "report.json"
        save_audit_report(report, path)
        restored = json.loads(path.read_text())
        assert restored["metric"] == "emd"
        assert restored["population_size"] == paper_population_small.size


class TestExperimentResultRoundTrip:
    def test_save_and_load_rows(self, tmp_path: Path) -> None:
        scenario = table3_scenario(PaperConfig(n_workers=80, seed=3))
        result = run_scenario(scenario, algorithms=("balanced",), seed=0)
        path = tmp_path / "result.json"
        save_experiment_result(result, path)
        rows = load_experiment_rows(path)
        assert len(rows) == len(result.rows)
        assert rows[0]["algorithm"] == "balanced"
        assert rows[0]["scenario"] == scenario.name
        assert isinstance(rows[0]["unfairness"], float)
