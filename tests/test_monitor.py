"""Monitored populations: streaming intake, debounced audits, snapshots.

Each robustness claim of the streaming service layer gets a test here:
journal-ahead intake (a killed daemon restores byte-identically), typed
backpressure on the mutation buffer, applied-prefix journaling for invalid
batches, snapshot integrity gating, and journal compaction under a size
threshold.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.exceptions import JobRejectedError, ServiceError, SnapshotError
from repro.marketplace import random_mutation_mix
from repro.service import (
    AuditService,
    MonitorSpec,
    ServiceConfig,
    compact_snapshot,
    verify_snapshot,
)
from repro.service.snapshot import load_snapshot, read_snapshot_payload

SPEC = {
    "id": "m1",
    "scenario": "table1",
    "n_workers": 80,
    "debounce_seconds": 0.0,
    "max_delay_seconds": 0.05,
}


def make_service(tmp_path, **overrides) -> AuditService:
    config = ServiceConfig(
        tmp_path / "work",
        port=None,
        monitor_poll_seconds=0.01,
        **overrides,
    )
    return AuditService(config).start()


def mutation_batch(service, monitor_id: str, seed: int, count: int):
    monitor = service.monitor(monitor_id)
    with monitor.lock:
        return [
            m.to_dict()
            for m in random_mutation_mix(
                monitor.store, np.random.default_rng(seed), count
            )
        ]


def wait_for_audits(service, monitor_id: str, n: int, timeout: float = 20.0):
    monitor = service.monitor(monitor_id)
    deadline = time.time() + timeout
    while time.time() < deadline:
        with monitor.lock:
            if monitor.audits >= n and monitor.unaudited == 0:
                return
        time.sleep(0.01)
    raise AssertionError(f"monitor never reached {n} audits")


class TestMonitorSpec:
    def test_round_trip_and_fingerprint_stability(self):
        spec = MonitorSpec.from_dict(SPEC)
        clone = MonitorSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_unknown_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown monitor spec field"):
            MonitorSpec.from_dict({**SPEC, "warp": 9})

    def test_invalid_values_rejected(self):
        with pytest.raises(ServiceError):
            MonitorSpec(id="", scenario="table1")
        with pytest.raises(ServiceError):
            MonitorSpec(id="x", scenario="nope")
        with pytest.raises(ServiceError):
            MonitorSpec(id="x", algorithm="nope")
        with pytest.raises(ServiceError):
            MonitorSpec(id="x", metric="nope")
        with pytest.raises(ServiceError):
            MonitorSpec(id="x", debounce_seconds=-1.0)
        with pytest.raises(ServiceError):
            MonitorSpec(id="a b", scenario="table1")

    def test_build_store_is_deterministic(self):
        spec = MonitorSpec.from_dict(SPEC)
        assert spec.build_store().state_digest() == spec.build_store().state_digest()


class TestIntake:
    def test_create_stream_audit_series(self, tmp_path):
        service = make_service(tmp_path)
        try:
            summary = service.create_monitor(dict(SPEC))
            assert summary["population_size"] == 80
            info = service.apply_mutations("m1", mutation_batch(service, "m1", 1, 25))
            assert info["applied"] == 25
            wait_for_audits(service, "m1", 1)
            series = service.monitor_series("m1")
            assert series and series[-1]["kind"] == "audit"
            assert series[-1]["version"] == 25
            assert service.health()["monitors"] == 1
        finally:
            service.stop()

    def test_duplicate_and_invalid_monitor_rejected(self, tmp_path):
        service = make_service(tmp_path)
        try:
            service.create_monitor(dict(SPEC))
            with pytest.raises(JobRejectedError) as rejected:
                service.create_monitor(dict(SPEC))
            assert rejected.value.reason == "duplicate_id"
            with pytest.raises(JobRejectedError) as rejected:
                service.create_monitor({"id": "bad", "scenario": "nope"})
            assert rejected.value.reason == "invalid_spec"
            with pytest.raises(ServiceError):
                service.apply_mutations("ghost", [])
        finally:
            service.stop()

    def test_buffer_limit_backpressure(self, tmp_path):
        service = make_service(tmp_path)
        try:
            # A debounce window far in the future keeps mutations unaudited.
            spec = {
                **SPEC,
                "debounce_seconds": 60.0,
                "max_delay_seconds": 60.0,
                "buffer_limit": 10,
            }
            service.create_monitor(spec)
            service.apply_mutations("m1", mutation_batch(service, "m1", 2, 8))
            with pytest.raises(JobRejectedError) as rejected:
                service.apply_mutations("m1", mutation_batch(service, "m1", 3, 5))
            assert rejected.value.reason == "queue_full"
        finally:
            service.stop()

    def test_invalid_batch_journals_applied_prefix(self, tmp_path):
        service = make_service(tmp_path)
        try:
            service.create_monitor(dict(SPEC))
            batch = mutation_batch(service, "m1", 4, 3)
            batch.append({"kind": "remove", "worker_id": 10**9})
            with pytest.raises(JobRejectedError) as rejected:
                service.apply_mutations("m1", batch)
            assert rejected.value.reason == "invalid_spec"
            assert "position" not in str(rejected.value) or True
            monitor = service.monitor("m1")
            with monitor.lock:
                assert monitor.store.version == 3  # prefix applied
        finally:
            service.stop()
        # The journaled prefix survives a restart.
        service = make_service(tmp_path)
        try:
            monitor = service.monitor("m1")
            with monitor.lock:
                assert monitor.store.version == 3
        finally:
            service.stop()

    def test_shutting_down_rejects_streaming(self, tmp_path):
        service = make_service(tmp_path)
        try:
            service.create_monitor(dict(SPEC))
            service.request_shutdown()
            with pytest.raises(JobRejectedError) as rejected:
                service.apply_mutations("m1", [])
            assert rejected.value.reason == "shutting_down"
            with pytest.raises(JobRejectedError) as rejected:
                service.create_monitor({"id": "m2", "scenario": "table1"})
            assert rejected.value.reason == "shutting_down"
        finally:
            service.stop()


class TestCrashRecovery:
    @staticmethod
    def simulate_kill(service) -> None:
        """Abandon the daemon without any graceful-stop bookkeeping."""
        service._shutdown.set()
        time.sleep(0.05)
        if service._http is not None:
            service._http.shutdown()
            service._http.server_close()
        service.journal._handle.close()

    def test_killed_daemon_restores_state_and_series_exactly(self, tmp_path):
        service = make_service(tmp_path)
        service.create_monitor(dict(SPEC))
        for seed in (10, 11, 12):
            service.apply_mutations(
                "m1", mutation_batch(service, "m1", seed, 15)
            )
            wait_for_audits(service, "m1", seed - 9)
        monitor = service.monitor("m1")
        with monitor.lock:
            digest = monitor.store.state_digest()
            version = monitor.store.version
        series = service.monitor_series("m1")
        self.simulate_kill(service)

        revived = make_service(tmp_path)
        try:
            monitor = revived.monitor("m1")
            with monitor.lock:
                assert monitor.store.state_digest() == digest
                assert monitor.store.version == version
            assert revived.monitor_series("m1") == series
            # The revived monitor keeps streaming and auditing.
            revived.apply_mutations(
                "m1", mutation_batch(revived, "m1", 13, 5)
            )
            wait_for_audits(revived, "m1", monitor.audits + 1)
        finally:
            revived.stop()

    def test_restore_without_snapshots_replays_journal_only(self, tmp_path):
        service = make_service(tmp_path, snapshot_dir=None)
        service.create_monitor(dict(SPEC))
        service.apply_mutations("m1", mutation_batch(service, "m1", 20, 30))
        wait_for_audits(service, "m1", 1)
        monitor = service.monitor("m1")
        with monitor.lock:
            digest = monitor.store.state_digest()
        series = service.monitor_series("m1")
        self.simulate_kill(service)
        revived = make_service(tmp_path, snapshot_dir=None)
        try:
            monitor = revived.monitor("m1")
            with monitor.lock:
                assert monitor.store.state_digest() == digest
            assert revived.monitor_series("m1") == series
        finally:
            revived.stop()


class TestSnapshots:
    def _snapshotted_service(self, tmp_path):
        service = make_service(tmp_path)
        service.create_monitor(dict(SPEC))
        service.apply_mutations("m1", mutation_batch(service, "m1", 30, 20))
        wait_for_audits(service, "m1", 1)
        return service, service.config.snapshot_dir / "m1.json"

    def test_snapshot_written_and_verifies(self, tmp_path):
        service, path = self._snapshotted_service(tmp_path)
        try:
            assert path.exists()
            info = verify_snapshot(path)
            assert info["id"] == "m1"
            assert info["version"] == 20
        finally:
            service.stop()

    def test_tampered_state_fails_digest(self, tmp_path):
        service, path = self._snapshotted_service(tmp_path)
        service.stop()
        import json

        payload = json.loads(path.read_text())
        payload["state"]["scores"][0] = 0.123456789
        path.write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="digest"):
            verify_snapshot(path)

    def test_wrong_spec_fingerprint_refused_on_load(self, tmp_path):
        service, path = self._snapshotted_service(tmp_path)
        service.stop()
        spec = MonitorSpec.from_dict({**SPEC, "n_workers": 81})
        with pytest.raises(SnapshotError, match="different monitor spec"):
            load_snapshot(
                path,
                spec.worker_schema(),
                spec.hist_spec(),
                expected_fingerprint=spec.fingerprint(),
            )

    def test_compact_snapshot_trims_series_only(self, tmp_path):
        service, path = self._snapshotted_service(tmp_path)
        for seed in (31, 32):
            service.apply_mutations("m1", mutation_batch(service, "m1", seed, 5))
            time.sleep(0.1)
        monitor = service.monitor("m1")
        with monitor.lock:
            digest = monitor.store.state_digest()
        service.stop()
        before_points = len(read_snapshot_payload(path)["series"])
        assert before_points >= 2
        compact_snapshot(path, keep_series=1)
        payload = read_snapshot_payload(path)
        assert len(payload["series"]) == 1
        assert payload["digest"] == digest
        verify_snapshot(path)

    def test_corrupt_snapshot_falls_back_to_journal_replay(self, tmp_path):
        service, path = self._snapshotted_service(tmp_path)
        monitor = service.monitor("m1")
        with monitor.lock:
            digest = monitor.store.state_digest()
        series = service.monitor_series("m1")
        TestCrashRecovery.simulate_kill(service)
        path.write_text("not json at all")
        revived = make_service(tmp_path)
        try:
            monitor = revived.monitor("m1")
            with monitor.lock:
                assert monitor.store.state_digest() == digest
            assert revived.monitor_series("m1") == series
            assert revived.metrics.as_dict()["counters"].get(
                "service.snapshot_restore_rejected"
            )
        finally:
            revived.stop()


class TestJournalCompactionTrigger:
    def test_size_threshold_compacts_after_audit(self, tmp_path):
        service = make_service(tmp_path, journal_max_bytes=2_000)
        try:
            service.create_monitor(dict(SPEC))
            for seed in range(40, 44):
                service.apply_mutations(
                    "m1", mutation_batch(service, "m1", seed, 25)
                )
                wait_for_audits(service, "m1", seed - 39)
            counters = service.metrics.as_dict()["counters"]
            assert counters.get("service.journal_compactions", 0) >= 1
            monitor = service.monitor("m1")
            with monitor.lock:
                digest = monitor.store.state_digest()
            series = service.monitor_series("m1")
            TestCrashRecovery.simulate_kill(service)
        finally:
            pass
        # Compaction must not have harmed recoverability.
        revived = make_service(tmp_path, journal_max_bytes=2_000)
        try:
            monitor = revived.monitor("m1")
            with monitor.lock:
                assert monitor.store.state_digest() == digest
            assert revived.monitor_series("m1") == series
        finally:
            revived.stop()
