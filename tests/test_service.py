"""The audit daemon: backpressure, quarantine, deadlines, drain, SIGKILL.

Two layers of tests:

* **in-process** — an :class:`AuditService` with a monkeypatched executor
  pins down queue accounting, typed rejections, the retry/quarantine loop
  and graceful drain without real searches;
* **subprocess drills** — a real ``repro-audit serve`` daemon is SIGKILL'd
  mid-job and restarted (the journal must re-queue and the re-run must be
  byte-identical), and SIGTERM'd mid-queue (it must drain in-flight work,
  leave queued jobs PENDING and exit 0).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.exceptions import JobRejectedError, JobStateError, ServiceError
from repro.service import (
    AuditJob,
    AuditService,
    JobJournal,
    JobState,
    ServiceConfig,
)
from repro.service.jobs import TERMINAL_STATES, check_transition

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _job(job_id: str, **overrides) -> AuditJob:
    spec = {"id": job_id, "scenario": "figure1", "algorithm": "balanced"}
    spec.update(overrides)
    return AuditJob(**spec)


@pytest.fixture()
def service(tmp_path):
    svc = AuditService(
        ServiceConfig(tmp_path, queue_limit=2, workers=1, port=None, poll_seconds=0.01)
    )
    svc.start()
    yield svc
    svc.stop()


class TestStateMachine:
    def test_legal_lifecycle(self):
        check_transition(JobState.PENDING, JobState.RUNNING)
        check_transition(JobState.RUNNING, JobState.DONE)
        check_transition(JobState.RUNNING, JobState.PENDING)  # crash recovery
        check_transition(JobState.FAILED, JobState.QUARANTINED)

    def test_illegal_edges_raise(self):
        with pytest.raises(JobStateError):
            check_transition(JobState.DONE, JobState.RUNNING)
        with pytest.raises(JobStateError):
            check_transition(JobState.PENDING, JobState.DONE)
        with pytest.raises(JobStateError):
            check_transition(JobState.QUARANTINED, JobState.PENDING)

    def test_terminal_states_have_no_exits(self):
        from repro.service.jobs import VALID_TRANSITIONS

        for state in TERMINAL_STATES:
            assert not VALID_TRANSITIONS[state]


class TestJobSpec:
    def test_round_trip(self):
        job = _job("a1", functions=("f",), deadline_seconds=2.5, priority=-1)
        assert AuditJob.from_dict(job.to_dict()) == job

    def test_unknown_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown"):
            AuditJob.from_dict({"id": "a", "scenario": "figure1", "nope": 1})

    @pytest.mark.parametrize(
        "spec",
        [
            {"id": "bad id!", "scenario": "figure1"},
            {"id": "../escape", "scenario": "figure1"},
            {"id": "a", "scenario": "not-a-scenario"},
            {"id": "a", "scenario": "figure1", "deadline_seconds": 0},
            {"id": "a", "scenario": "figure1", "max_attempts": 0},
        ],
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ServiceError):
            AuditJob.from_dict(spec)


class TestBackpressure:
    def test_full_queue_rejects_with_typed_reason(self, service, monkeypatch):
        release = threading.Event()

        def blocked(self, job):
            release.wait(30)
            return {"scenario": "figure1-toy", "rows": [], "deadline_hit": False}

        monkeypatch.setattr(AuditService, "_execute", blocked)
        service.submit(_job("running"))  # taken by the single worker
        deadline = time.monotonic() + 5
        while service.health()["running"] == 0:
            assert time.monotonic() < deadline, "worker never started the job"
            time.sleep(0.01)
        service.submit(_job("queued-1"))
        service.submit(_job("queued-2"))
        with pytest.raises(JobRejectedError) as excinfo:
            service.submit(_job("overflow"))
        assert excinfo.value.reason == "queue_full"
        assert service.metrics.counter("service.rejected") == 1
        assert service.metrics.counter("service.rejected.queue_full") == 1
        # The rejected job was never journaled.
        assert "overflow" not in {r["id"] for r in service.jobs_snapshot()}
        release.set()
        assert service.drain(timeout=30)

    def test_duplicate_id_rejected(self, service):
        service.submit(_job("dup"))
        with pytest.raises(JobRejectedError) as excinfo:
            service.submit(_job("dup"))
        assert excinfo.value.reason == "duplicate_id"

    def test_invalid_spec_rejected(self, service):
        with pytest.raises(JobRejectedError) as excinfo:
            service.submit({"id": "x", "scenario": "bogus"})
        assert excinfo.value.reason == "invalid_spec"
        with pytest.raises(JobRejectedError) as excinfo:
            service.submit(_job("x", algorithm="no-such-algorithm"))
        assert excinfo.value.reason == "invalid_spec"

    def test_shutting_down_rejected(self, service):
        service.request_shutdown()
        with pytest.raises(JobRejectedError) as excinfo:
            service.submit(_job("late"))
        assert excinfo.value.reason == "shutting_down"


class TestQuarantine:
    def test_poison_job_quarantined_after_max_attempts(self, service, monkeypatch):
        def explode(self, job):
            raise RuntimeError("poison payload")

        monkeypatch.setattr(AuditService, "_execute", explode)
        service.submit(_job("poison", max_attempts=3))
        assert service.drain(timeout=30)
        record = service.record("poison")
        assert record.state is JobState.QUARANTINED
        assert record.attempt == 3
        assert "poison payload" in record.reason
        assert service.metrics.counter("service.quarantined") == 1
        assert service.metrics.counter("service.retries") == 2
        assert service.metrics.counter("service.failed") == 3
        # The daemon survived: a fresh job still runs to completion.
        monkeypatch.undo()
        service.submit(_job("healthy"))
        assert service.drain(timeout=60)
        assert service.record("healthy").state is JobState.DONE

    def test_quarantine_is_durable(self, tmp_path, monkeypatch):
        config = ServiceConfig(tmp_path, workers=1, port=None, poll_seconds=0.01)
        monkeypatch.setattr(
            AuditService,
            "_execute",
            lambda self, job: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with AuditService(config) as svc:
            svc.submit(_job("poison", max_attempts=2))
            assert svc.drain(timeout=30)
        jobs = JobJournal(tmp_path / "journal.jsonl").replay()
        assert jobs["poison"].state is JobState.QUARANTINED


class TestDeadlineJobs:
    def test_tiny_deadline_job_cancelled_with_partial_result(self, service):
        service.submit(_job("rushed", algorithm="exhaustive", deadline_seconds=1e-9))
        assert service.drain(timeout=60)
        record = service.record("rushed")
        assert record.state is JobState.CANCELLED
        assert record.reason == "deadline"
        assert record.result["deadline_hit"]
        assert all(row["deadline_hit"] for row in record.result["rows"])
        assert service.metrics.counter("service.cancelled") == 1

    def test_unbounded_job_done_with_rows(self, service):
        service.submit(_job("calm"))
        assert service.drain(timeout=60)
        record = service.record("calm")
        assert record.state is JobState.DONE
        assert record.result["rows"][0]["function"] == "f"
        assert not record.result["deadline_hit"]


class TestGracefulDrain:
    def test_inflight_finishes_and_queued_stays_pending(self, tmp_path, monkeypatch):
        started = threading.Event()
        release = threading.Event()

        def slow(self, job):
            started.set()
            release.wait(30)
            return {"scenario": "figure1-toy", "rows": [], "deadline_hit": False}

        monkeypatch.setattr(AuditService, "_execute", slow)
        svc = AuditService(
            ServiceConfig(tmp_path, queue_limit=4, workers=1, port=None,
                          poll_seconds=0.01)
        ).start()
        svc.submit(_job("inflight"))
        assert started.wait(5)
        svc.submit(_job("waiting"))
        svc.request_shutdown()
        release.set()
        svc.stop()
        jobs = JobJournal(tmp_path / "journal.jsonl").replay()
        assert jobs["inflight"].state is JobState.DONE
        assert jobs["waiting"].state is JobState.PENDING
        assert not any(j.state is JobState.RUNNING for j in jobs.values())

    def test_restart_resumes_queued_jobs(self, tmp_path):
        config = ServiceConfig(tmp_path, workers=1, port=None, poll_seconds=0.01)
        with AuditService(config) as svc:
            svc.submit(_job("early"))
            assert svc.drain(timeout=60)
        # Simulate a job left PENDING by a drain: journal one directly.
        with JobJournal(tmp_path / "journal.jsonl") as journal:
            journal.append_submit(_job("leftover"), timestamp=100.0)
        with AuditService(config) as svc:
            assert svc.drain(timeout=60)
            assert svc.record("leftover").state is JobState.DONE
            assert svc.record("early").state is JobState.DONE  # not re-run
            assert svc.record("early").attempt == 1


class TestHTTPEndpoints:
    @pytest.fixture()
    def http_service(self, tmp_path):
        svc = AuditService(
            ServiceConfig(tmp_path, queue_limit=2, workers=1, port=0,
                          poll_seconds=0.01)
        ).start()
        host, port = svc.address
        yield svc, f"http://{host}:{port}"
        svc.stop()

    def _get(self, url):
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.load(response)

    def _post(self, url, payload):
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode(), method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, json.load(response)
        except urllib.error.HTTPError as exc:
            return exc.code, json.load(exc)

    def test_healthz(self, http_service):
        _, base = http_service
        status, body = self._get(base + "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_submit_accepted_and_job_listed(self, http_service):
        svc, base = http_service
        status, body = self._post(base + "/submit", _job("h1").to_dict())
        assert (status, body["accepted"]) == (202, "h1")
        assert svc.drain(timeout=60)
        _, listing = self._get(base + "/jobs")
        assert [j["state"] for j in listing["jobs"]] == ["DONE"]

    def test_submit_rejections_map_to_status_codes(self, http_service):
        svc, base = http_service
        self._post(base + "/submit", _job("h1").to_dict())
        status, body = self._post(base + "/submit", _job("h1").to_dict())
        assert (status, body["reason"]) == (409, "duplicate_id")
        status, body = self._post(base + "/submit", {"id": "h2", "scenario": "no"})
        assert (status, body["reason"]) == (400, "invalid_spec")
        svc.request_shutdown()
        status, body = self._post(base + "/submit", _job("h3").to_dict())
        assert (status, body["reason"]) == (503, "shutting_down")

    def test_metrics_endpoint_serves_registry(self, http_service):
        svc, base = http_service
        svc.submit(_job("m1"))
        assert svc.drain(timeout=60)
        status, body = self._get(base + "/metrics")
        assert status == 200
        assert body["counters"]["service.submitted"] == 1
        assert body["counters"]["service.completed"] == 1

    def test_unknown_path_404(self, http_service):
        _, base = http_service
        try:
            with urllib.request.urlopen(base + "/nope", timeout=10) as response:
                status = response.status
        except urllib.error.HTTPError as exc:
            status = exc.code
        assert status == 404


class TestV1Api:
    """The versioned surface: envelope errors, deprecation headers, parity."""

    @pytest.fixture()
    def http_service(self, tmp_path):
        svc = AuditService(
            ServiceConfig(tmp_path, queue_limit=2, workers=1, port=0,
                          poll_seconds=0.01)
        ).start()
        host, port = svc.address
        yield svc, f"http://{host}:{port}"
        svc.stop()

    def _get(self, url):
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                return response.status, json.load(response), dict(response.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, json.load(exc), dict(exc.headers)

    def _post(self, url, payload):
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode(), method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, json.load(response), dict(response.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, json.load(exc), dict(exc.headers)

    def test_v1_routes_carry_no_deprecation_header(self, http_service):
        _, base = http_service
        for path in ("/v1/healthz", "/v1/metrics", "/v1/jobs"):
            status, _, headers = self._get(base + path)
            assert status == 200
            assert "Deprecation" not in headers, path

    def test_legacy_routes_are_deprecated_aliases(self, http_service):
        _, base = http_service
        for path in ("/healthz", "/metrics", "/jobs"):
            status, _, headers = self._get(base + path)
            assert status == 200
            assert headers.get("Deprecation") == "true", path

    def test_v1_and_legacy_serve_the_same_payloads(self, http_service):
        svc, base = http_service
        svc.submit(_job("parity"))
        assert svc.drain(timeout=60)
        for path in ("/healthz", "/metrics", "/jobs"):
            _, legacy, _ = self._get(base + path)
            _, v1, _ = self._get(base + "/v1" + path)
            assert legacy == v1, path

    def test_post_v1_jobs_returns_the_record(self, http_service):
        svc, base = http_service
        status, body, _ = self._post(base + "/v1/jobs", _job("j1").to_dict())
        assert status == 202
        assert body["job"]["id"] == "j1"
        assert body["job"]["kind"] == "audit"
        assert body["job"]["state"] == "PENDING"
        assert svc.drain(timeout=60)

    def test_get_v1_job_by_id(self, http_service):
        svc, base = http_service
        svc.submit(_job("j2"))
        assert svc.drain(timeout=60)
        status, body, _ = self._get(base + "/v1/jobs/j2")
        assert status == 200
        assert body["job"]["state"] == "DONE"
        assert body["job"]["result"]["rows"]
        # By-id lookup is v1-only: the legacy surface never had it.
        status, body, _ = self._get(base + "/jobs/j2")
        assert status == 404

    def test_v1_errors_use_the_shared_envelope(self, http_service):
        svc, base = http_service
        self._post(base + "/v1/jobs", _job("dup").to_dict())
        status, body, _ = self._post(base + "/v1/jobs", _job("dup").to_dict())
        assert status == 409
        assert body["error"]["code"] == "duplicate_id"
        assert "dup" in body["error"]["message"]
        status, body, _ = self._post(
            base + "/v1/jobs", {"id": "bad", "scenario": "no-such"}
        )
        assert (status, body["error"]["code"]) == (400, "invalid_spec")
        status, body, _ = self._get(base + "/v1/jobs/missing")
        assert (status, body["error"]["code"]) == (404, "not_found")
        svc.request_shutdown()
        status, body, _ = self._post(base + "/v1/jobs", _job("late").to_dict())
        assert (status, body["error"]["code"]) == (503, "shutting_down")

    def test_legacy_error_shape_is_preserved(self, http_service):
        _, base = http_service
        self._post(base + "/submit", _job("dup").to_dict())
        status, body, headers = self._post(base + "/submit", _job("dup").to_dict())
        assert status == 409
        assert body["reason"] == "duplicate_id"  # flat legacy shape
        assert "error" in body and isinstance(body["error"], str)
        assert headers.get("Deprecation") == "true"

    def test_malformed_json_body_is_invalid_spec(self, http_service):
        _, base = http_service
        request = urllib.request.Request(
            base + "/v1/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert json.load(excinfo.value)["error"]["code"] == "invalid_spec"


class TestJobSchemaV2:
    def test_to_dict_carries_the_schema_tag(self):
        from repro.service import JOB_SCHEMA

        assert _job("s1").to_dict()["schema"] == JOB_SCHEMA

    def test_round_trip_preserves_mitigate_fields(self):
        job = _job(
            "s2", kind="mitigate", strategy="det_rerank", top_k=50,
            min_proportion=0.9, alpha=0.2, amount=0.5,
        )
        assert AuditJob.from_dict(job.to_dict()) == job

    def test_untagged_payload_is_legacy_v1_audit(self):
        # Journals written before the v2 schema carry no tag; they replay
        # as plain audit jobs.
        job = AuditJob.from_dict({"id": "old", "scenario": "figure1"})
        assert job.kind == "audit"

    def test_wrong_schema_tag_rejected(self):
        with pytest.raises(ServiceError, match="schema"):
            AuditJob.from_dict(
                {"id": "s3", "scenario": "figure1", "schema": "repro.job/v99"}
            )

    @pytest.mark.parametrize(
        "overrides",
        [
            {"kind": "transmogrify"},
            {"kind": "mitigate", "strategy": "no-such-strategy"},
            {"kind": "mitigate", "top_k": 0},
            {"kind": "mitigate", "min_proportion": 0.0},
            {"kind": "mitigate", "alpha": 1.0},
            {"kind": "mitigate", "amount": 2.0},
        ],
    )
    def test_invalid_mitigate_specs_rejected(self, overrides):
        with pytest.raises(ServiceError):
            _job("bad", **overrides)

    def test_record_snapshot_reports_the_kind(self, service):
        service.submit(_job("k1", kind="mitigate", strategy="quantile"))
        assert service.drain(timeout=60)
        assert service.record("k1").as_dict()["kind"] == "mitigate"


class TestMitigateJobs:
    def test_mitigate_job_end_to_end(self, service):
        service.submit(
            _job("m1", kind="mitigate", strategy="quantile", seed=3)
        )
        assert service.drain(timeout=60)
        record = service.record("m1")
        assert record.state is JobState.DONE
        result = record.result
        assert result["kind"] == "mitigate"
        assert not result["deadline_hit"]
        assert result["rows"], "mitigate job produced no rows"
        for row in result["rows"]:
            assert row["strategy"] == "quantile"
            assert row["unfairness_after"] < row["unfairness_before"]
            assert row["unfairness_before"] == pytest.approx(
                row["audit_unfairness"]
            )
            assert isinstance(row["ranking_digest"], int)
        assert service.metrics.counter("service.repairs") == len(result["rows"])

    def test_mitigate_job_honours_deadlines(self, service):
        service.submit(
            _job(
                "rushed-m", kind="mitigate", strategy="quantile",
                deadline_seconds=1e-9,
            )
        )
        assert service.drain(timeout=60)
        record = service.record("rushed-m")
        assert record.state is JobState.CANCELLED
        assert record.result["deadline_hit"]

    def test_mitigate_resume_skips_checkpointed_cells(self, service):
        # The executor checkpoints each repaired cell; a re-execution of the
        # same job (the post-crash path) replays stored rows instead of
        # repairing again, bit-identically.
        job = _job("ckpt", kind="mitigate", strategy="quantile", seed=11)
        first = service._execute(job)
        skipped_before = service.metrics.counter("checkpoint.cells_skipped")
        second = service._execute(job)
        assert second == first
        assert service.metrics.counter("checkpoint.cells_skipped") == (
            skipped_before + len(first["rows"])
        )
        checkpoint = (
            service.config.workdir / "checkpoints" / "ckpt" / "checkpoint.json"
        )
        assert checkpoint.exists()


def _start_daemon(workdir, extra=()):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--workdir", str(workdir),
         "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    # The startup banner carries the bound port.
    deadline = time.monotonic() + 30
    line = process.stdout.readline()
    while "listening on" not in line:
        assert time.monotonic() < deadline, "daemon never came up"
        assert process.poll() is None, "daemon died during startup"
        line = process.stdout.readline()
    base = line.split("listening on ")[1].split()[0]
    return process, base


def _submit(base, payload):
    request = urllib.request.Request(
        base + "/submit", data=json.dumps(payload).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


def _jobs(base):
    with urllib.request.urlopen(base + "/jobs", timeout=30) as response:
        return {j["id"]: j for j in json.load(response)["jobs"]}


def _shm_segments():
    shm = Path("/dev/shm")
    return set(p.name for p in shm.iterdir()) if shm.is_dir() else set()


@pytest.mark.slow
class TestSubprocessDrills:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        process, base = _start_daemon(tmp_path)
        try:
            _submit(base, {"id": "d1", "scenario": "figure1"})
            deadline = time.monotonic() + 60
            while _jobs(base).get("d1", {}).get("state") != "DONE":
                assert time.monotonic() < deadline
                time.sleep(0.05)
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
        jobs = JobJournal(tmp_path / "journal.jsonl").replay()
        assert jobs["d1"].state is JobState.DONE
        assert not any(j.state is JobState.RUNNING for j in jobs.values())

    def test_sigkill_mid_job_restart_is_byte_identical(self, tmp_path):
        """The chaos drill: SIGKILL while a job is RUNNING, restart on the
        same workdir, and the job must complete exactly once with results
        byte-identical to an uninterrupted run (checkpoint resume + per-cell
        seeding), leaking no shared-memory segments."""
        from repro.simulation.config import PaperConfig
        from repro.simulation.runner import run_scenario
        from repro.simulation.scenarios import table1_scenario

        shm_before = _shm_segments()
        spec = {"id": "victim", "scenario": "table1", "n_workers": 250, "seed": 5}
        process, base = _start_daemon(tmp_path)
        killed_while_running = False
        try:
            _submit(base, spec)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                state = _jobs(base).get("victim", {}).get("state")
                if state == "RUNNING":
                    process.kill()  # SIGKILL: no drain, no journal goodbye
                    killed_while_running = True
                    break
                if state in ("DONE", "FAILED"):
                    break
                time.sleep(0.002)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

        if killed_while_running:
            journal = JobJournal(tmp_path / "journal.jsonl")
            assert journal.replay()["victim"].state is JobState.RUNNING

        process, base = _start_daemon(tmp_path)
        try:
            deadline = time.monotonic() + 120
            while _jobs(base).get("victim", {}).get("state") != "DONE":
                assert time.monotonic() < deadline, "recovered job never finished"
                time.sleep(0.05)
            record = _jobs(base)["victim"]
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()

        # Exactly once: one DONE record for the job, attempts reflect the
        # recovery re-queue, and the rows match an uninterrupted reference
        # run bit-for-bit.
        reference = run_scenario(
            table1_scenario(PaperConfig(n_workers=250)),
            algorithms=("balanced",),
            seed=5,
        )
        expected = {
            (row.function, row.unfairness, row.n_partitions) for row in reference.rows
        }
        actual = {
            (row["function"], row["unfairness"], row["n_partitions"])
            for row in record["result"]["rows"]
        }
        assert actual == expected
        assert _shm_segments() == shm_before
