"""The audit daemon: backpressure, quarantine, deadlines, drain, SIGKILL.

Two layers of tests:

* **in-process** — an :class:`AuditService` with a monkeypatched executor
  pins down queue accounting, typed rejections, the retry/quarantine loop
  and graceful drain without real searches;
* **subprocess drills** — a real ``repro-audit serve`` daemon is SIGKILL'd
  mid-job and restarted (the journal must re-queue and the re-run must be
  byte-identical), and SIGTERM'd mid-queue (it must drain in-flight work,
  leave queued jobs PENDING and exit 0).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.exceptions import JobRejectedError, JobStateError, ServiceError
from repro.service import (
    AuditJob,
    AuditService,
    JobJournal,
    JobState,
    ServiceConfig,
)
from repro.service.jobs import TERMINAL_STATES, check_transition

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _job(job_id: str, **overrides) -> AuditJob:
    spec = {"id": job_id, "scenario": "figure1", "algorithm": "balanced"}
    spec.update(overrides)
    return AuditJob(**spec)


@pytest.fixture()
def service(tmp_path):
    svc = AuditService(
        ServiceConfig(tmp_path, queue_limit=2, workers=1, port=None, poll_seconds=0.01)
    )
    svc.start()
    yield svc
    svc.stop()


class TestStateMachine:
    def test_legal_lifecycle(self):
        check_transition(JobState.PENDING, JobState.RUNNING)
        check_transition(JobState.RUNNING, JobState.DONE)
        check_transition(JobState.RUNNING, JobState.PENDING)  # crash recovery
        check_transition(JobState.FAILED, JobState.QUARANTINED)

    def test_illegal_edges_raise(self):
        with pytest.raises(JobStateError):
            check_transition(JobState.DONE, JobState.RUNNING)
        with pytest.raises(JobStateError):
            check_transition(JobState.PENDING, JobState.DONE)
        with pytest.raises(JobStateError):
            check_transition(JobState.QUARANTINED, JobState.PENDING)

    def test_terminal_states_have_no_exits(self):
        from repro.service.jobs import VALID_TRANSITIONS

        for state in TERMINAL_STATES:
            assert not VALID_TRANSITIONS[state]


class TestJobSpec:
    def test_round_trip(self):
        job = _job("a1", functions=("f",), deadline_seconds=2.5, priority=-1)
        assert AuditJob.from_dict(job.to_dict()) == job

    def test_unknown_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown"):
            AuditJob.from_dict({"id": "a", "scenario": "figure1", "nope": 1})

    @pytest.mark.parametrize(
        "spec",
        [
            {"id": "bad id!", "scenario": "figure1"},
            {"id": "../escape", "scenario": "figure1"},
            {"id": "a", "scenario": "not-a-scenario"},
            {"id": "a", "scenario": "figure1", "deadline_seconds": 0},
            {"id": "a", "scenario": "figure1", "max_attempts": 0},
        ],
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ServiceError):
            AuditJob.from_dict(spec)


class TestBackpressure:
    def test_full_queue_rejects_with_typed_reason(self, service, monkeypatch):
        release = threading.Event()

        def blocked(self, job):
            release.wait(30)
            return {"scenario": "figure1-toy", "rows": [], "deadline_hit": False}

        monkeypatch.setattr(AuditService, "_execute", blocked)
        service.submit(_job("running"))  # taken by the single worker
        deadline = time.monotonic() + 5
        while service.health()["running"] == 0:
            assert time.monotonic() < deadline, "worker never started the job"
            time.sleep(0.01)
        service.submit(_job("queued-1"))
        service.submit(_job("queued-2"))
        with pytest.raises(JobRejectedError) as excinfo:
            service.submit(_job("overflow"))
        assert excinfo.value.reason == "queue_full"
        assert service.metrics.counter("service.rejected") == 1
        assert service.metrics.counter("service.rejected.queue_full") == 1
        # The rejected job was never journaled.
        assert "overflow" not in {r["id"] for r in service.jobs_snapshot()}
        release.set()
        assert service.drain(timeout=30)

    def test_duplicate_id_rejected(self, service):
        service.submit(_job("dup"))
        with pytest.raises(JobRejectedError) as excinfo:
            service.submit(_job("dup"))
        assert excinfo.value.reason == "duplicate_id"

    def test_invalid_spec_rejected(self, service):
        with pytest.raises(JobRejectedError) as excinfo:
            service.submit({"id": "x", "scenario": "bogus"})
        assert excinfo.value.reason == "invalid_spec"
        with pytest.raises(JobRejectedError) as excinfo:
            service.submit(_job("x", algorithm="no-such-algorithm"))
        assert excinfo.value.reason == "invalid_spec"

    def test_shutting_down_rejected(self, service):
        service.request_shutdown()
        with pytest.raises(JobRejectedError) as excinfo:
            service.submit(_job("late"))
        assert excinfo.value.reason == "shutting_down"


class TestQuarantine:
    def test_poison_job_quarantined_after_max_attempts(self, service, monkeypatch):
        def explode(self, job):
            raise RuntimeError("poison payload")

        monkeypatch.setattr(AuditService, "_execute", explode)
        service.submit(_job("poison", max_attempts=3))
        assert service.drain(timeout=30)
        record = service.record("poison")
        assert record.state is JobState.QUARANTINED
        assert record.attempt == 3
        assert "poison payload" in record.reason
        assert service.metrics.counter("service.quarantined") == 1
        assert service.metrics.counter("service.retries") == 2
        assert service.metrics.counter("service.failed") == 3
        # The daemon survived: a fresh job still runs to completion.
        monkeypatch.undo()
        service.submit(_job("healthy"))
        assert service.drain(timeout=60)
        assert service.record("healthy").state is JobState.DONE

    def test_quarantine_is_durable(self, tmp_path, monkeypatch):
        config = ServiceConfig(tmp_path, workers=1, port=None, poll_seconds=0.01)
        monkeypatch.setattr(
            AuditService,
            "_execute",
            lambda self, job: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with AuditService(config) as svc:
            svc.submit(_job("poison", max_attempts=2))
            assert svc.drain(timeout=30)
        jobs = JobJournal(tmp_path / "journal.jsonl").replay()
        assert jobs["poison"].state is JobState.QUARANTINED


class TestDeadlineJobs:
    def test_tiny_deadline_job_cancelled_with_partial_result(self, service):
        service.submit(_job("rushed", algorithm="exhaustive", deadline_seconds=1e-9))
        assert service.drain(timeout=60)
        record = service.record("rushed")
        assert record.state is JobState.CANCELLED
        assert record.reason == "deadline"
        assert record.result["deadline_hit"]
        assert all(row["deadline_hit"] for row in record.result["rows"])
        assert service.metrics.counter("service.cancelled") == 1

    def test_unbounded_job_done_with_rows(self, service):
        service.submit(_job("calm"))
        assert service.drain(timeout=60)
        record = service.record("calm")
        assert record.state is JobState.DONE
        assert record.result["rows"][0]["function"] == "f"
        assert not record.result["deadline_hit"]


class TestGracefulDrain:
    def test_inflight_finishes_and_queued_stays_pending(self, tmp_path, monkeypatch):
        started = threading.Event()
        release = threading.Event()

        def slow(self, job):
            started.set()
            release.wait(30)
            return {"scenario": "figure1-toy", "rows": [], "deadline_hit": False}

        monkeypatch.setattr(AuditService, "_execute", slow)
        svc = AuditService(
            ServiceConfig(tmp_path, queue_limit=4, workers=1, port=None,
                          poll_seconds=0.01)
        ).start()
        svc.submit(_job("inflight"))
        assert started.wait(5)
        svc.submit(_job("waiting"))
        svc.request_shutdown()
        release.set()
        svc.stop()
        jobs = JobJournal(tmp_path / "journal.jsonl").replay()
        assert jobs["inflight"].state is JobState.DONE
        assert jobs["waiting"].state is JobState.PENDING
        assert not any(j.state is JobState.RUNNING for j in jobs.values())

    def test_restart_resumes_queued_jobs(self, tmp_path):
        config = ServiceConfig(tmp_path, workers=1, port=None, poll_seconds=0.01)
        with AuditService(config) as svc:
            svc.submit(_job("early"))
            assert svc.drain(timeout=60)
        # Simulate a job left PENDING by a drain: journal one directly.
        with JobJournal(tmp_path / "journal.jsonl") as journal:
            journal.append_submit(_job("leftover"), timestamp=100.0)
        with AuditService(config) as svc:
            assert svc.drain(timeout=60)
            assert svc.record("leftover").state is JobState.DONE
            assert svc.record("early").state is JobState.DONE  # not re-run
            assert svc.record("early").attempt == 1


class TestHTTPEndpoints:
    @pytest.fixture()
    def http_service(self, tmp_path):
        svc = AuditService(
            ServiceConfig(tmp_path, queue_limit=2, workers=1, port=0,
                          poll_seconds=0.01)
        ).start()
        host, port = svc.address
        yield svc, f"http://{host}:{port}"
        svc.stop()

    def _get(self, url):
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.load(response)

    def _post(self, url, payload):
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode(), method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, json.load(response)
        except urllib.error.HTTPError as exc:
            return exc.code, json.load(exc)

    def test_healthz(self, http_service):
        _, base = http_service
        status, body = self._get(base + "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_submit_accepted_and_job_listed(self, http_service):
        svc, base = http_service
        status, body = self._post(base + "/submit", _job("h1").to_dict())
        assert (status, body["accepted"]) == (202, "h1")
        assert svc.drain(timeout=60)
        _, listing = self._get(base + "/jobs")
        assert [j["state"] for j in listing["jobs"]] == ["DONE"]

    def test_submit_rejections_map_to_status_codes(self, http_service):
        svc, base = http_service
        self._post(base + "/submit", _job("h1").to_dict())
        status, body = self._post(base + "/submit", _job("h1").to_dict())
        assert (status, body["reason"]) == (409, "duplicate_id")
        status, body = self._post(base + "/submit", {"id": "h2", "scenario": "no"})
        assert (status, body["reason"]) == (400, "invalid_spec")
        svc.request_shutdown()
        status, body = self._post(base + "/submit", _job("h3").to_dict())
        assert (status, body["reason"]) == (503, "shutting_down")

    def test_metrics_endpoint_serves_registry(self, http_service):
        svc, base = http_service
        svc.submit(_job("m1"))
        assert svc.drain(timeout=60)
        status, body = self._get(base + "/metrics")
        assert status == 200
        assert body["counters"]["service.submitted"] == 1
        assert body["counters"]["service.completed"] == 1

    def test_unknown_path_404(self, http_service):
        _, base = http_service
        try:
            with urllib.request.urlopen(base + "/nope", timeout=10) as response:
                status = response.status
        except urllib.error.HTTPError as exc:
            status = exc.code
        assert status == 404


def _start_daemon(workdir, extra=()):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--workdir", str(workdir),
         "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    # The startup banner carries the bound port.
    deadline = time.monotonic() + 30
    line = process.stdout.readline()
    while "listening on" not in line:
        assert time.monotonic() < deadline, "daemon never came up"
        assert process.poll() is None, "daemon died during startup"
        line = process.stdout.readline()
    base = line.split("listening on ")[1].split()[0]
    return process, base


def _submit(base, payload):
    request = urllib.request.Request(
        base + "/submit", data=json.dumps(payload).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


def _jobs(base):
    with urllib.request.urlopen(base + "/jobs", timeout=30) as response:
        return {j["id"]: j for j in json.load(response)["jobs"]}


def _shm_segments():
    shm = Path("/dev/shm")
    return set(p.name for p in shm.iterdir()) if shm.is_dir() else set()


@pytest.mark.slow
class TestSubprocessDrills:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        process, base = _start_daemon(tmp_path)
        try:
            _submit(base, {"id": "d1", "scenario": "figure1"})
            deadline = time.monotonic() + 60
            while _jobs(base).get("d1", {}).get("state") != "DONE":
                assert time.monotonic() < deadline
                time.sleep(0.05)
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
        jobs = JobJournal(tmp_path / "journal.jsonl").replay()
        assert jobs["d1"].state is JobState.DONE
        assert not any(j.state is JobState.RUNNING for j in jobs.values())

    def test_sigkill_mid_job_restart_is_byte_identical(self, tmp_path):
        """The chaos drill: SIGKILL while a job is RUNNING, restart on the
        same workdir, and the job must complete exactly once with results
        byte-identical to an uninterrupted run (checkpoint resume + per-cell
        seeding), leaking no shared-memory segments."""
        from repro.simulation.config import PaperConfig
        from repro.simulation.runner import run_scenario
        from repro.simulation.scenarios import table1_scenario

        shm_before = _shm_segments()
        spec = {"id": "victim", "scenario": "table1", "n_workers": 250, "seed": 5}
        process, base = _start_daemon(tmp_path)
        killed_while_running = False
        try:
            _submit(base, spec)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                state = _jobs(base).get("victim", {}).get("state")
                if state == "RUNNING":
                    process.kill()  # SIGKILL: no drain, no journal goodbye
                    killed_while_running = True
                    break
                if state in ("DONE", "FAILED"):
                    break
                time.sleep(0.002)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

        if killed_while_running:
            journal = JobJournal(tmp_path / "journal.jsonl")
            assert journal.replay()["victim"].state is JobState.RUNNING

        process, base = _start_daemon(tmp_path)
        try:
            deadline = time.monotonic() + 120
            while _jobs(base).get("victim", {}).get("state") != "DONE":
                assert time.monotonic() < deadline, "recovered job never finished"
                time.sleep(0.05)
            record = _jobs(base)["victim"]
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()

        # Exactly once: one DONE record for the job, attempts reflect the
        # recovery re-queue, and the rows match an uninterrupted reference
        # run bit-for-bit.
        reference = run_scenario(
            table1_scenario(PaperConfig(n_workers=250)),
            algorithms=("balanced",),
            seed=5,
        )
        expected = {
            (row.function, row.unfairness, row.n_partitions) for row in reference.rows
        }
        actual = {
            (row["function"], row["unfairness"], row["n_partitions"])
            for row in record["result"]["rows"]
        }
        assert actual == expected
        assert _shm_segments() == shm_before
