"""Tests for the shared evaluation engine (kernels, incremental, backends).

The load-bearing guarantees:

* vectorized kernels match the scalar ``metric.distance`` loops to float
  round-off for every metric that has one;
* the incremental objective replayed over random split/merge sequences
  matches full recomputation to 1e-12 for **every** registered metric;
* ``ProcessPoolBackend`` and ``SequentialBackend`` produce bit-identical
  ``AlgorithmResult.unfairness`` on a fixed seed;
* no algorithm constructs its own ``UnfairnessEvaluator`` — evaluation is
  the engine's job.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import (
    CategoricalAttribute,
    IntegerAttribute,
    ObservedAttribute,
)
from repro.core.algorithms import get_algorithm
from repro.core.histogram import HistogramSpec
from repro.core.partition import Partition
from repro.core.population import Population
from repro.core.schema import WorkerSchema
from repro.core.splitting import split_partition
from repro.core.unfairness import UnfairnessEvaluator
from repro.engine import (
    EvaluationEngine,
    ProcessPoolBackend,
    SequentialBackend,
    available_backends,
    cross_matrix,
    full_objective,
    get_backend,
    has_vectorized_kernel,
    pairwise_matrix,
)
from repro.exceptions import PartitioningError
from repro.metrics.base import available_metrics, get_metric

SPEC = HistogramSpec(bins=8)

#: Metrics with a batched NumPy kernel (everything but the LP-based emd-t).
KERNEL_METRICS = tuple(m for m in available_metrics() if has_vectorized_kernel(get_metric(m)))


def _random_pmfs(rng: np.random.Generator, k: int, bins: int = 8) -> np.ndarray:
    pmfs = rng.dirichlet(np.ones(bins), size=k)
    # Exercise exact-zero bins, the special case for the divergence logs.
    pmfs[0, : bins // 2] = 0.0
    pmfs[0] /= pmfs[0].sum()
    return pmfs


def _random_population(rng: np.random.Generator, n: int) -> Population:
    schema = WorkerSchema(
        protected=(
            CategoricalAttribute("a", ("x", "y")),
            CategoricalAttribute("b", ("u", "v", "w")),
            IntegerAttribute("c", 0, 9, buckets=2),
        ),
        observed=(ObservedAttribute("skill", 0.0, 1.0),),
    )
    return Population(
        schema,
        protected={
            "a": rng.integers(0, 2, size=n),
            "b": rng.integers(0, 3, size=n),
            "c": rng.integers(0, 10, size=n),
        },
        observed={"skill": rng.random(n)},
    )


# ------------------------------------------------------------------- kernels


@pytest.mark.parametrize("metric_name", KERNEL_METRICS)
def test_cross_matrix_matches_scalar_distances(metric_name: str) -> None:
    metric = get_metric(metric_name)
    rng = np.random.default_rng(3)
    left = _random_pmfs(rng, 5)
    right = _random_pmfs(rng, 7)
    fast = cross_matrix(metric, left, right, SPEC)
    for i in range(5):
        for j in range(7):
            assert fast[i, j] == pytest.approx(
                metric.distance(left[i], right[j], SPEC), abs=1e-12
            )


@pytest.mark.parametrize("metric_name", KERNEL_METRICS)
def test_pairwise_matrix_matches_scalar_distances(metric_name: str) -> None:
    metric = get_metric(metric_name)
    pmfs = _random_pmfs(np.random.default_rng(4), 6)
    fast = pairwise_matrix(metric, pmfs, SPEC)
    assert np.allclose(fast, fast.T)
    assert np.all(np.diag(fast) == 0.0)
    for i in range(6):
        for j in range(i + 1, 6):
            assert fast[i, j] == pytest.approx(
                metric.distance(pmfs[i], pmfs[j], SPEC), abs=1e-12
            )


@pytest.mark.parametrize("metric_name", sorted(available_metrics()))
@pytest.mark.parametrize("weighted", [False, True])
def test_full_objective_matches_reference_average(metric_name: str, weighted: bool) -> None:
    metric = get_metric(metric_name)
    small_spec = HistogramSpec(bins=4)
    k = 4 if metric_name == "emd-t" else 8
    pmfs = np.random.default_rng(5).dirichlet(np.ones(small_spec.bins), size=k)
    weights = np.arange(1.0, k + 1.0) if weighted else None
    value, pairs = full_objective(metric, pmfs, small_spec, weights)
    assert value == pytest.approx(
        metric.average_pairwise(pmfs, small_spec, weights), abs=1e-12
    )
    assert pairs == 0 or pairs == k * (k - 1) // 2


# -------------------------------------------------- incremental == full (1e-12)


def _replay_random_sequence(metric_name: str, seed: int, weighting: str) -> None:
    rng = np.random.default_rng(seed)
    # The LP-based metric costs one linprog per pair; keep its runs tiny.
    n = 12 if metric_name == "emd-t" else int(rng.integers(20, 60))
    n_steps = 3 if metric_name == "emd-t" else 6
    spec = HistogramSpec(bins=4 if metric_name == "emd-t" else 8)
    population = _random_population(rng, n)
    scores = rng.random(n)

    engine = EvaluationEngine(
        population, scores, spec, metric=metric_name, weighting=weighting
    )
    reference = EvaluationEngine(
        population, scores, spec, metric=metric_name, weighting=weighting, mode="full"
    )
    tracker = engine.incremental([Partition(population.all_indices())])

    for _ in range(n_steps):
        k = tracker.k
        if k >= 3 and rng.random() < 0.3:
            i, j = rng.choice(k, size=2, replace=False)
            merged = Partition(
                np.concatenate(
                    [tracker.partitions[int(i)].indices, tracker.partitions[int(j)].indices]
                )
            )
            predicted = tracker.score_merge((int(i), int(j)), merged)
            tracker.apply_merge((int(i), int(j)), merged)
        else:
            splittable = [
                (idx, attr)
                for idx, p in enumerate(tracker.partitions)
                for attr in population.schema.protected_names
                if attr not in p.constrained_attributes()
            ]
            if not splittable:
                break
            idx, attr = splittable[int(rng.integers(len(splittable)))]
            children = split_partition(population, tracker.partitions[idx], attr)
            predicted = tracker.score_split(idx, children)
            tracker.apply_split(idx, children)
        actual = reference.unfairness(tracker.partitions)
        assert math.isclose(predicted, actual, rel_tol=1e-12, abs_tol=1e-12)
        assert math.isclose(tracker.unfairness(), actual, rel_tol=1e-12, abs_tol=1e-12)


@pytest.mark.parametrize("metric_name", sorted(available_metrics()))
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_incremental_matches_full_recomputation(metric_name: str, seed: int) -> None:
    _replay_random_sequence(metric_name, seed, "uniform")


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_incremental_matches_full_size_weighted(seed: int) -> None:
    _replay_random_sequence("emd", seed, "size")


def test_incremental_rejects_out_of_range_positions(small_population) -> None:
    engine = EvaluationEngine(small_population, np.linspace(0, 1, 12))
    tracker = engine.incremental([Partition(small_population.all_indices())])
    with pytest.raises(PartitioningError):
        tracker.score_replace((5,), [])


# ------------------------------------------------------------------ caching


def test_value_cache_hits_and_counts(small_population) -> None:
    scores = np.linspace(0, 1, 12)
    engine = EvaluationEngine(small_population, scores)
    root = Partition(small_population.all_indices())
    children = split_partition(small_population, root, "gender")
    first = engine.unfairness(children)
    assert engine.stats.cache_hits == 0
    assert engine.stats.n_full_evaluations == 1
    # Re-splitting produces *new* Partition objects with the same members;
    # the multiset-of-histograms cache key still matches.
    second = engine.unfairness(split_partition(small_population, root, "gender"))
    assert second == first
    assert engine.stats.cache_hits == 1
    assert engine.stats.n_evaluations == 2
    assert engine.stats.n_full_evaluations == 1


def test_full_mode_never_caches(small_population) -> None:
    engine = EvaluationEngine(small_population, np.linspace(0, 1, 12), mode="full")
    root = Partition(small_population.all_indices())
    children = split_partition(small_population, root, "gender")
    engine.unfairness(children)
    engine.unfairness(children)
    assert engine.stats.cache_hits == 0
    assert engine.stats.n_full_evaluations == 2
    assert engine.stats.pair_distances_computed == engine.stats.pair_distances_full


def test_engine_matches_reference_evaluator(paper_population_small) -> None:
    rng = np.random.default_rng(11)
    scores = rng.random(paper_population_small.size)
    root = Partition(paper_population_small.all_indices())
    children = split_partition(paper_population_small, root, "gender")
    engine = EvaluationEngine(paper_population_small, scores)
    evaluator = UnfairnessEvaluator(paper_population_small, scores)
    assert engine.unfairness(children) == pytest.approx(
        evaluator.unfairness(children), abs=1e-12
    )
    assert engine.cross_average([children[0]], children[1:]) == pytest.approx(
        evaluator.cross_average([children[0]], children[1:]), abs=1e-12
    )
    assert engine.union_average([children[0]], children[1:]) == pytest.approx(
        evaluator.union_average([children[0]], children[1:]), abs=1e-12
    )


# ----------------------------------------------------------------- backends


def test_available_and_get_backend() -> None:
    assert available_backends() == ("sequential", "process", "sharded")
    assert isinstance(get_backend(None), SequentialBackend)
    assert isinstance(get_backend("sequential"), SequentialBackend)
    pool = get_backend("process", workers=2)
    assert isinstance(pool, ProcessPoolBackend)
    assert pool.workers == 2
    sharded = get_backend("sharded", workers=2)
    assert type(sharded).__name__ == "ShardedBackend"
    assert sharded.workers == 2
    with pytest.raises(PartitioningError):
        get_backend("gpu")


def test_score_many_matches_individual_queries(small_population) -> None:
    scores = np.linspace(0, 1, 12)
    engine = EvaluationEngine(small_population, scores)
    root = Partition(small_population.all_indices())
    candidates = [
        split_partition(small_population, root, "gender"),
        split_partition(small_population, root, "country"),
        [root],
    ]
    batched = engine.score_many(candidates)
    assert batched == [engine.unfairness(c) for c in candidates]


# The process-vs-sequential bit-identity matrix moved to
# tests/parity/test_execution_parity.py (shared parity harness).


# ------------------------------------------------------- engine integration


def test_algorithm_result_carries_engine_counters(paper_population_small) -> None:
    rng = np.random.default_rng(31)
    scores = rng.random(paper_population_small.size)
    result = get_algorithm("balanced").run(paper_population_small, scores)
    assert result.n_evaluations > 0
    assert result.n_full_evaluations + result.n_incremental_evaluations + result.cache_hits == result.n_evaluations
    assert result.pair_distances_full > 0
    # EMD's closed-form average never materialises individual pairs.
    assert result.pair_distances_computed == 0
    assert result.backend == "sequential"
    assert result.workers == 1


def test_full_mode_materialises_every_pair(paper_population_small) -> None:
    rng = np.random.default_rng(31)
    scores = rng.random(paper_population_small.size)
    incremental = get_algorithm("balanced").run(paper_population_small, scores)
    full = get_algorithm("balanced").run(
        paper_population_small, scores, engine_mode="full"
    )
    assert full.unfairness == pytest.approx(incremental.unfairness, abs=1e-12)
    assert full.pair_distances_computed == full.pair_distances_full
    assert full.pair_distances_computed >= 3 * max(incremental.pair_distances_computed, 1)


def test_unbalanced_uses_incremental_evaluations(paper_population_small) -> None:
    rng = np.random.default_rng(37)
    scores = rng.random(paper_population_small.size)
    result = get_algorithm("unbalanced").run(paper_population_small, scores)
    assert result.n_incremental_evaluations > 0
    assert result.pair_distances_computed < result.pair_distances_full


def test_no_algorithm_constructs_an_evaluator() -> None:
    """Acceptance criterion: evaluation goes through the engine only."""
    algorithms_dir = (
        Path(__file__).resolve().parent.parent / "src" / "repro" / "core" / "algorithms"
    )
    for source_file in sorted(algorithms_dir.glob("*.py")):
        source = source_file.read_text()
        # Docstring cross-references are fine; imports and construction are not.
        assert "UnfairnessEvaluator(" not in source, source_file.name
        assert "import UnfairnessEvaluator" not in source, source_file.name
        assert "from repro.core.unfairness" not in source, source_file.name
