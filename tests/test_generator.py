"""Unit tests for population generators and the Figure 1 toy data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.population import Population
from repro.exceptions import PopulationError
from repro.simulation.config import paper_schema
from repro.simulation.generator import (
    TOY_OPTIMAL_GROUPS,
    generate_paper_population,
    generate_population,
    toy_population,
)


class TestGeneratePopulation:
    def test_size_and_schema(self) -> None:
        population = generate_population(paper_schema(), 123, rng=0)
        assert population.size == 123
        assert population.schema.protected_names == (
            "gender",
            "country",
            "year_of_birth",
            "language",
            "ethnicity",
            "years_experience",
        )

    def test_same_seed_same_population(self) -> None:
        schema = paper_schema()
        first = generate_population(schema, 50, rng=9)
        second = generate_population(schema, 50, rng=9)
        for name in schema.protected_names:
            np.testing.assert_array_equal(
                first.protected_column(name), second.protected_column(name)
            )
        for name in schema.observed_names:
            np.testing.assert_array_equal(
                first.observed_column(name), second.observed_column(name)
            )

    def test_different_seeds_differ(self) -> None:
        schema = paper_schema()
        first = generate_population(schema, 50, rng=1)
        second = generate_population(schema, 50, rng=2)
        assert not np.array_equal(
            first.observed_column("language_test"),
            second.observed_column("language_test"),
        )

    def test_values_respect_domains(self) -> None:
        population = generate_population(paper_schema(), 500, rng=3)
        years = population.protected_column("year_of_birth")
        assert years.min() >= 1950 and years.max() <= 2009
        experience = population.protected_column("years_experience")
        assert experience.min() >= 0 and experience.max() <= 30
        for name in ("language_test", "approval_rate"):
            column = population.observed_column(name)
            assert column.min() >= 25.0 and column.max() <= 100.0

    def test_distribution_is_roughly_uniform(self) -> None:
        # "populated randomly so as to avoid injecting any bias ourselves"
        population = generate_population(paper_schema(), 5000, rng=4)
        genders = population.protected_column("gender")
        assert abs(genders.mean() - 0.5) < 0.03
        countries = np.bincount(population.protected_column("country"), minlength=3)
        assert countries.min() > 1400  # each of 3 values near 5000/3

    def test_zero_size_rejected(self) -> None:
        with pytest.raises(PopulationError, match=">= 1"):
            generate_population(paper_schema(), 0)

    def test_paper_population_bucket_override(self) -> None:
        population = generate_paper_population(30, seed=0, year_of_birth_buckets=3)
        attr = population.schema.protected_attribute("year_of_birth")
        assert attr.cardinality == 3


class TestToyPopulation:
    def test_twelve_workers_two_attributes(self, toy: Population) -> None:
        assert toy.size == 12
        assert toy.schema.protected_names == ("gender", "language")
        assert toy.schema.observed_names == ("qualification",)

    def test_male_scores_separate_by_language(self, toy: Population) -> None:
        genders = toy.protected_column("gender")
        languages = toy.protected_column("language")
        scores = toy.observed_column("qualification")
        english = scores[(genders == 0) & (languages == 0)]
        indian = scores[(genders == 0) & (languages == 1)]
        other = scores[(genders == 0) & (languages == 2)]
        assert english.min() > indian.max() > other.max()

    def test_female_distribution_identical_across_languages(
        self, toy: Population
    ) -> None:
        genders = toy.protected_column("gender")
        languages = toy.protected_column("language")
        scores = toy.observed_column("qualification")
        female_sets = [
            sorted(scores[(genders == 1) & (languages == code)]) for code in range(3)
        ]
        assert female_sets[0] == female_sets[1] == female_sets[2]

    def test_optimal_groups_constant_names_exist(self, toy: Population) -> None:
        assert len(TOY_OPTIMAL_GROUPS) == 4
        assert any("Female" in label for label in TOY_OPTIMAL_GROUPS)
