"""Crash-safety of the job journal (``repro.service.journal``).

The core property test truncates a populated journal at **every byte
offset** and re-opens it: recovery must either parse the file cleanly or
drop only the torn tail — never lose a record that had a complete line,
never resurrect a duplicate job id, never mistake mid-file damage for a
torn tail.  That is the exact guarantee the daemon's "journal ahead of
acknowledgement" protocol rests on.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro.exceptions import JournalError
from repro.service.jobs import AuditJob, JobState
from repro.service.journal import (
    JOURNAL_SCHEMA,
    JobJournal,
    decode_line,
    encode_record,
)


def _job(i: int) -> AuditJob:
    return AuditJob(id=f"job-{i}", scenario="figure1", algorithm="balanced", seed=i)


@pytest.fixture()
def populated(tmp_path):
    """A journal holding three jobs in different lifecycle stages."""
    path = tmp_path / "journal.jsonl"
    with JobJournal(path) as journal:
        for i in range(3):
            journal.append_submit(_job(i), timestamp=float(i))
        journal.append_state("job-0", JobState.RUNNING, 10.0, attempt=1)
        journal.append_state("job-0", JobState.DONE, 11.0, result={"rows": []})
        journal.append_state("job-1", JobState.RUNNING, 12.0, attempt=1)
    return path


class TestRecordCodec:
    def test_round_trip(self):
        record = {"type": "state", "id": "x", "state": "DONE", "ts": 1.5}
        assert decode_line(encode_record(record)) == record

    def test_flipped_byte_fails_crc(self):
        line = encode_record({"type": "submit", "job": {"id": "a"}})
        # Corrupt a character inside the record payload, keeping valid JSON.
        damaged = line.replace('"id":"a"', '"id":"b"')
        assert damaged != line
        with pytest.raises(ValueError, match="crc mismatch"):
            decode_line(damaged)

    def test_non_record_json_rejected(self):
        with pytest.raises(ValueError):
            decode_line('{"not": "a record"}')


class TestTruncationProperty:
    def test_every_byte_offset_recovers_or_drops_only_the_tail(
        self, populated, tmp_path
    ):
        """SIGKILL can cut an append anywhere; recovery must be exact."""
        data = populated.read_bytes()
        # Byte offsets that end a complete line — prefixes that are clean.
        clean_offsets = {0}
        position = 0
        for line in data.splitlines(keepends=True):
            position += len(line)
            clean_offsets.add(position)

        for offset in range(len(data) + 1):
            path = tmp_path / "cut.jsonl"
            path.write_bytes(data[:offset])
            journal = JobJournal(path)
            if offset == 0:
                # Empty file: no header — refuse, don't invent one.
                with pytest.raises(JournalError):
                    journal.open()
                continue
            largest_clean = max(o for o in clean_offsets if o <= offset)
            if largest_clean == 0:
                # Even the header is torn: nothing trustworthy to append to.
                with pytest.raises(JournalError):
                    journal.open()
                continue
            journal.open()
            journal.close()
            # Recovery truncated exactly to the last complete record —
            # nothing less (no lost acknowledged records), nothing more.
            assert path.read_bytes() == data[:largest_clean]
            replayed = JobJournal(path).replay()
            ids = list(replayed)
            assert len(ids) == len(set(ids))  # no duplicate job ids
            expected_jobs = sum(
                1 for i in range(3) if data.find(f"job-{i}".encode()) < largest_clean
                and data.find(f"job-{i}".encode()) != -1
            )
            assert len(ids) == expected_jobs

    def test_recovered_tail_is_reported(self, populated):
        data = populated.read_bytes()
        populated.write_bytes(data[:-5])  # tear the final line
        journal = JobJournal(populated).open()
        journal.close()
        assert journal.recovered_tail_bytes > 0

    def test_append_after_recovery_continues_the_log(self, populated):
        data = populated.read_bytes()
        populated.write_bytes(data[:-5])
        with JobJournal(populated) as journal:
            journal.append_state("job-2", JobState.RUNNING, 20.0, attempt=1)
        replayed = JobJournal(populated).replay()
        assert replayed["job-2"].state is JobState.RUNNING


class TestMidFileCorruption:
    def test_damaged_middle_record_raises(self, populated):
        lines = populated.read_bytes().splitlines(keepends=True)
        lines[2] = lines[2][:10] + b"X" + lines[2][11:]
        populated.write_bytes(b"".join(lines))
        with pytest.raises(JournalError, match="mid-file"):
            JobJournal(populated).open()

    def test_crc_valid_but_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        header = encode_record({"type": "header", "schema": "repro.journal/v99"})
        path.write_text(header + "\n")
        with pytest.raises(JournalError, match="schema"):
            JobJournal(path).open()

    def test_alien_file_without_header_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(encode_record({"type": "state", "id": "x"}) + "\n")
        with pytest.raises(JournalError, match="header"):
            JobJournal(path).open()


class TestReplay:
    def test_replay_reconstructs_states(self, populated):
        jobs = JobJournal(populated).replay()
        assert jobs["job-0"].state is JobState.DONE
        assert jobs["job-0"].result == {"rows": []}
        assert jobs["job-1"].state is JobState.RUNNING
        assert jobs["job-1"].attempt == 1
        assert jobs["job-2"].state is JobState.PENDING

    def test_replay_rejects_duplicate_submit(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.append_submit(_job(0), 0.0)
            journal.append_submit(_job(0), 1.0)
        with pytest.raises(JournalError, match="duplicate"):
            JobJournal(path).replay()

    def test_replay_rejects_unknown_job(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.append_state("ghost", JobState.RUNNING, 0.0)
        with pytest.raises(JournalError, match="unknown job"):
            JobJournal(path).replay()

    def test_header_carries_schema_tag(self, populated):
        first = json.loads(populated.read_text().splitlines()[0])
        assert first["rec"]["schema"] == JOURNAL_SCHEMA
        body = json.dumps(first["rec"], sort_keys=True, separators=(",", ":"))
        assert first["crc"] == zlib.crc32(body.encode())


class TestCompaction:
    """Size-threshold compaction must be replay-equivalent (the satellite's
    core property): for ANY legal transition history, replaying the
    compacted journal yields the same final ``(state, attempt, reason,
    result)`` per job, and the same post-snapshot monitor events."""

    @staticmethod
    def _random_walk(journal: JobJournal, rng, i: int) -> None:
        """Journal one job through a random legal lifecycle walk."""
        from repro.service.jobs import VALID_TRANSITIONS

        journal.append_submit(_job(i), timestamp=float(i))
        state = JobState.PENDING
        attempt = 0
        ts = float(i)
        for _ in range(rng.randint(0, 8)):
            choices = sorted(VALID_TRANSITIONS[state], key=lambda s: s.value)
            if not choices:
                break
            state = rng.choice(choices)
            ts += 1.0
            details: dict = {}
            if state is JobState.RUNNING:
                attempt += 1
                details["attempt"] = attempt
            if rng.random() < 0.5:
                details["reason"] = f"r{rng.randint(0, 9)}"
            if state is JobState.DONE:
                details["result"] = {"rows": [attempt]}
            journal.append_state(_job(i).id, state, ts, **details)

    def test_random_walks_replay_equivalently_after_compaction(self, tmp_path):
        import random

        for seed in range(12):
            rng = random.Random(seed)
            path = tmp_path / f"journal-{seed}.jsonl"
            journal = JobJournal(path).open()
            for i in range(rng.randint(1, 6)):
                self._random_walk(journal, rng, i)
            before = {
                job_id: (r.state, r.attempt, r.reason, r.result)
                for job_id, r in journal.replay().items()
            }
            size_before = journal.size_bytes()
            reclaimed = journal.compact_to()
            journal.close()
            after = {
                job_id: (r.state, r.attempt, r.reason, r.result)
                for job_id, r in JobJournal(path).replay().items()
            }
            assert after == before, f"seed {seed} diverged"
            assert reclaimed >= 0
            assert JobJournal(path).size_bytes() == size_before - reclaimed

    def test_monitor_records_respect_snapshot_floor(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path).open()
        spec = {"id": "m1", "scenario": "table1"}
        journal.append({"type": "mpop_create", "ts": 0.0, "spec": spec})
        for version in (3, 6, 9):
            journal.append(
                {
                    "type": "mpop_mutations",
                    "id": "m1",
                    "ts": float(version),
                    "version": version,
                    "mutations": [],
                }
            )
            journal.append(
                {
                    "type": "mpop_audit",
                    "id": "m1",
                    "ts": float(version),
                    "version": version,
                    "kind": "audit",
                    "unfairness": 0.1 * version,
                }
            )
        journal.compact_to({"m1": 6})
        journal.close()
        state = JobJournal(path).replay_state()
        monitor = state.monitors["m1"]
        assert [b["version"] for b in monitor.mutation_batches] == [9]
        assert [a["version"] for a in monitor.audits] == [9]
        assert monitor.spec == spec

    def test_compaction_is_atomic_and_reopens_append_handle(self, populated):
        journal = JobJournal(populated).open()
        journal.compact_to()
        # The append handle survives compaction: new records land in the file.
        journal.append_submit(_job(99), timestamp=99.0)
        journal.close()
        jobs = JobJournal(populated).replay()
        assert "job-99" in jobs
