"""Crash-safety of the job journal (``repro.service.journal``).

The core property test truncates a populated journal at **every byte
offset** and re-opens it: recovery must either parse the file cleanly or
drop only the torn tail — never lose a record that had a complete line,
never resurrect a duplicate job id, never mistake mid-file damage for a
torn tail.  That is the exact guarantee the daemon's "journal ahead of
acknowledgement" protocol rests on.
"""

from __future__ import annotations

import json
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import JournalError
from repro.service.jobs import AuditJob, JobState
from repro.service.journal import (
    JOURNAL_SCHEMA,
    JobJournal,
    decode_line,
    encode_record,
)


def _job(i: int) -> AuditJob:
    return AuditJob(id=f"job-{i}", scenario="figure1", algorithm="balanced", seed=i)


@pytest.fixture()
def populated(tmp_path):
    """A journal holding three jobs in different lifecycle stages."""
    path = tmp_path / "journal.jsonl"
    with JobJournal(path) as journal:
        for i in range(3):
            journal.append_submit(_job(i), timestamp=float(i))
        journal.append_state("job-0", JobState.RUNNING, 10.0, attempt=1)
        journal.append_state("job-0", JobState.DONE, 11.0, result={"rows": []})
        journal.append_state("job-1", JobState.RUNNING, 12.0, attempt=1)
    return path


class TestRecordCodec:
    def test_round_trip(self):
        record = {"type": "state", "id": "x", "state": "DONE", "ts": 1.5}
        assert decode_line(encode_record(record)) == record

    def test_flipped_byte_fails_crc(self):
        line = encode_record({"type": "submit", "job": {"id": "a"}})
        # Corrupt a character inside the record payload, keeping valid JSON.
        damaged = line.replace('"id":"a"', '"id":"b"')
        assert damaged != line
        with pytest.raises(ValueError, match="crc mismatch"):
            decode_line(damaged)

    def test_non_record_json_rejected(self):
        with pytest.raises(ValueError):
            decode_line('{"not": "a record"}')


class TestTruncationProperty:
    def test_every_byte_offset_recovers_or_drops_only_the_tail(
        self, populated, tmp_path
    ):
        """SIGKILL can cut an append anywhere; recovery must be exact."""
        data = populated.read_bytes()
        # Byte offsets that end a complete line — prefixes that are clean.
        clean_offsets = {0}
        position = 0
        for line in data.splitlines(keepends=True):
            position += len(line)
            clean_offsets.add(position)

        for offset in range(len(data) + 1):
            path = tmp_path / "cut.jsonl"
            path.write_bytes(data[:offset])
            journal = JobJournal(path)
            if offset == 0:
                # Empty file: no header — refuse, don't invent one.
                with pytest.raises(JournalError):
                    journal.open()
                continue
            largest_clean = max(o for o in clean_offsets if o <= offset)
            if largest_clean == 0:
                # Even the header is torn: nothing trustworthy to append to.
                with pytest.raises(JournalError):
                    journal.open()
                continue
            journal.open()
            journal.close()
            # Recovery truncated exactly to the last complete record —
            # nothing less (no lost acknowledged records), nothing more.
            assert path.read_bytes() == data[:largest_clean]
            replayed = JobJournal(path).replay()
            ids = list(replayed)
            assert len(ids) == len(set(ids))  # no duplicate job ids
            expected_jobs = sum(
                1 for i in range(3) if data.find(f"job-{i}".encode()) < largest_clean
                and data.find(f"job-{i}".encode()) != -1
            )
            assert len(ids) == expected_jobs

    def test_recovered_tail_is_reported(self, populated):
        data = populated.read_bytes()
        populated.write_bytes(data[:-5])  # tear the final line
        journal = JobJournal(populated).open()
        journal.close()
        assert journal.recovered_tail_bytes > 0

    def test_append_after_recovery_continues_the_log(self, populated):
        data = populated.read_bytes()
        populated.write_bytes(data[:-5])
        with JobJournal(populated) as journal:
            journal.append_state("job-2", JobState.RUNNING, 20.0, attempt=1)
        replayed = JobJournal(populated).replay()
        assert replayed["job-2"].state is JobState.RUNNING


class TestMidFileCorruption:
    def test_damaged_middle_record_raises(self, populated):
        lines = populated.read_bytes().splitlines(keepends=True)
        lines[2] = lines[2][:10] + b"X" + lines[2][11:]
        populated.write_bytes(b"".join(lines))
        with pytest.raises(JournalError, match="mid-file"):
            JobJournal(populated).open()

    def test_crc_valid_but_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        header = encode_record({"type": "header", "schema": "repro.journal/v99"})
        path.write_text(header + "\n")
        with pytest.raises(JournalError, match="schema"):
            JobJournal(path).open()

    def test_alien_file_without_header_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(encode_record({"type": "state", "id": "x"}) + "\n")
        with pytest.raises(JournalError, match="header"):
            JobJournal(path).open()


class TestReplay:
    def test_replay_reconstructs_states(self, populated):
        jobs = JobJournal(populated).replay()
        assert jobs["job-0"].state is JobState.DONE
        assert jobs["job-0"].result == {"rows": []}
        assert jobs["job-1"].state is JobState.RUNNING
        assert jobs["job-1"].attempt == 1
        assert jobs["job-2"].state is JobState.PENDING

    def test_replay_rejects_duplicate_submit(self, tmp_path):
        # A duplicate submit with a *different* spec is corruption.  (An
        # identical duplicate is the degraded group-commit retry signature
        # and replays idempotently — see TestJournalWriteErrors.)
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.append_submit(_job(0), 0.0)
            journal.append_submit(
                AuditJob(id="job-0", scenario="figure1", algorithm="greedy", seed=7),
                1.0,
            )
        with pytest.raises(JournalError, match="duplicate"):
            JobJournal(path).replay()

    def test_replay_rejects_unknown_job(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.append_state("ghost", JobState.RUNNING, 0.0)
        with pytest.raises(JournalError, match="unknown job"):
            JobJournal(path).replay()

    def test_header_carries_schema_tag(self, populated):
        first = json.loads(populated.read_text().splitlines()[0])
        assert first["rec"]["schema"] == JOURNAL_SCHEMA
        body = json.dumps(first["rec"], sort_keys=True, separators=(",", ":"))
        assert first["crc"] == zlib.crc32(body.encode())


class TestCompaction:
    """Size-threshold compaction must be replay-equivalent (the satellite's
    core property): for ANY legal transition history, replaying the
    compacted journal yields the same final ``(state, attempt, reason,
    result)`` per job, and the same post-snapshot monitor events."""

    @staticmethod
    def _random_walk(journal: JobJournal, rng, i: int) -> None:
        """Journal one job through a random legal lifecycle walk."""
        from repro.service.jobs import VALID_TRANSITIONS

        journal.append_submit(_job(i), timestamp=float(i))
        state = JobState.PENDING
        attempt = 0
        ts = float(i)
        for _ in range(rng.randint(0, 8)):
            choices = sorted(VALID_TRANSITIONS[state], key=lambda s: s.value)
            if not choices:
                break
            state = rng.choice(choices)
            ts += 1.0
            details: dict = {}
            if state is JobState.RUNNING:
                attempt += 1
                details["attempt"] = attempt
            if rng.random() < 0.5:
                details["reason"] = f"r{rng.randint(0, 9)}"
            if state is JobState.DONE:
                details["result"] = {"rows": [attempt]}
            journal.append_state(_job(i).id, state, ts, **details)

    def test_random_walks_replay_equivalently_after_compaction(self, tmp_path):
        import random

        for seed in range(12):
            rng = random.Random(seed)
            path = tmp_path / f"journal-{seed}.jsonl"
            journal = JobJournal(path).open()
            for i in range(rng.randint(1, 6)):
                self._random_walk(journal, rng, i)
            before = {
                job_id: (r.state, r.attempt, r.reason, r.result)
                for job_id, r in journal.replay().items()
            }
            size_before = journal.size_bytes()
            reclaimed = journal.compact_to()
            journal.close()
            after = {
                job_id: (r.state, r.attempt, r.reason, r.result)
                for job_id, r in JobJournal(path).replay().items()
            }
            assert after == before, f"seed {seed} diverged"
            assert reclaimed >= 0
            assert JobJournal(path).size_bytes() == size_before - reclaimed

    def test_monitor_records_respect_snapshot_floor(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path).open()
        spec = {"id": "m1", "scenario": "table1"}
        journal.append({"type": "mpop_create", "ts": 0.0, "spec": spec})
        for version in (3, 6, 9):
            journal.append(
                {
                    "type": "mpop_mutations",
                    "id": "m1",
                    "ts": float(version),
                    "version": version,
                    "mutations": [],
                }
            )
            journal.append(
                {
                    "type": "mpop_audit",
                    "id": "m1",
                    "ts": float(version),
                    "version": version,
                    "kind": "audit",
                    "unfairness": 0.1 * version,
                }
            )
        journal.compact_to({"m1": 6})
        journal.close()
        state = JobJournal(path).replay_state()
        monitor = state.monitors["m1"]
        assert [b["version"] for b in monitor.mutation_batches] == [9]
        assert [a["version"] for a in monitor.audits] == [9]
        assert monitor.spec == spec

    def test_compaction_is_atomic_and_reopens_append_handle(self, populated):
        journal = JobJournal(populated).open()
        journal.compact_to()
        # The append handle survives compaction: new records land in the file.
        journal.append_submit(_job(99), timestamp=99.0)
        journal.close()
        jobs = JobJournal(populated).replay()
        assert "job-99" in jobs


class TestGroupCommitTornTail:
    """Satellite property: bulk appends group-committed with one fsync,
    then torn at an arbitrary byte offset, must replay exactly the
    acknowledged prefix — every full line before the cut, nothing after."""

    @given(
        batch_sizes=st.lists(st.integers(1, 5), min_size=1, max_size=4),
        fraction=st.floats(0.0, 1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_batches_times_random_truncation(
        self, tmp_path_factory, batch_sizes, fraction
    ):
        tmp_path = tmp_path_factory.mktemp("torn")
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path).open()
        index = 0
        for size in batch_sizes:
            for _ in range(size):
                journal.append_submit(_job(index), timestamp=float(index), sync=False)
                index += 1
            journal.sync()  # one group commit per batch
        journal.close()
        data = path.read_bytes()

        # Map each complete line to the id it acknowledges.
        offsets, ids_by_offset, position = [0], {}, 0
        for line in data.splitlines(keepends=True):
            record = decode_line(line.decode("utf-8").rstrip("\n"))
            position += len(line)
            offsets.append(position)
            if record.get("type") == "submit":
                ids_by_offset[position] = record["job"]["id"]

        offset = int(fraction * len(data))
        largest_clean = max(o for o in offsets if o <= offset)
        cut = tmp_path / "cut.jsonl"
        cut.write_bytes(data[:offset])
        if largest_clean == 0:
            with pytest.raises(JournalError):
                JobJournal(cut).open()
            return
        JobJournal(cut).open().close()
        assert cut.read_bytes() == data[:largest_clean]
        replayed = set(JobJournal(cut).replay())
        expected = {
            job_id for end, job_id in ids_by_offset.items() if end <= largest_clean
        }
        assert replayed == expected


class TestJournalWriteErrors:
    """Typed durability failures: the fault plane's OSErrors surface as
    JournalWriteError with the correct ``written`` marker, and the dirty
    buffer repairs itself before the next append."""

    def _plane(self, **rates):
        from repro.io.faultfs import DiskFaultConfig, FaultPlane

        return FaultPlane(DiskFaultConfig(seed=1, **rates))

    @pytest.fixture(autouse=True)
    def _clean_plane(self):
        from repro.io import faultfs

        yield
        faultfs.uninstall()

    def test_append_eio_raises_unwritten_and_repairs(self, tmp_path):
        from repro.io import faultfs
        from repro.exceptions import JournalWriteError

        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path).open()
        faultfs.install(self._plane(eio_rate=1.0))
        with pytest.raises(JournalWriteError) as excinfo:
            journal.append_submit(_job(0), timestamp=0.0)
        assert excinfo.value.written is False
        faultfs.uninstall()
        journal.append_submit(_job(1), timestamp=1.0)
        journal.close()
        assert set(JobJournal(path).replay()) == {"job-1"}

    def test_torn_append_truncated_not_replayed(self, tmp_path):
        from repro.io import faultfs
        from repro.exceptions import JournalWriteError

        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path).open()
        journal.append_submit(_job(0), timestamp=0.0)
        faultfs.install(self._plane(torn_rate=1.0))
        with pytest.raises(JournalWriteError) as excinfo:
            journal.append_submit(_job(1), timestamp=1.0)
        assert excinfo.value.written is False
        faultfs.uninstall()
        # The dirty-buffer repair cuts the injected fragment exactly; the
        # next append lands on a clean tail.
        journal.append_submit(_job(2), timestamp=2.0)
        journal.close()
        assert set(JobJournal(path).replay()) == {"job-0", "job-2"}

    def test_fsync_failure_marks_written_true(self, tmp_path):
        from repro.io import faultfs
        from repro.exceptions import JournalWriteError

        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path).open()
        journal.append_submit(_job(0), timestamp=0.0, sync=False)
        faultfs.install(self._plane(fsync_rate=1.0))
        with pytest.raises(JournalWriteError) as excinfo:
            journal.sync()
        assert excinfo.value.written is True
        faultfs.uninstall()
        # Durability deferred, not lost: a later sync persists the record
        # exactly once (re-appending would have duplicated it).
        journal.sync()
        journal.close()
        assert set(JobJournal(path).replay()) == {"job-0"}

    def test_compaction_failure_keeps_old_file_and_append_handle(self, tmp_path):
        from repro.io import faultfs
        from repro.exceptions import JournalWriteError

        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path).open()
        journal.append_submit(_job(0), timestamp=0.0)
        faultfs.install(self._plane(enospc_rate=1.0))
        with pytest.raises(JournalWriteError):
            journal.compact_to()
        faultfs.uninstall()
        journal.append_submit(_job(1), timestamp=1.0)
        journal.close()
        assert set(JobJournal(path).replay()) == {"job-0", "job-1"}

    def test_replay_tolerates_degraded_running_running_history(self, tmp_path):
        # The degraded-requeue signature: a RUNNING edge whose re-queue hop
        # the broken disk swallowed, followed by the re-run's RUNNING edge.
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path).open()
        journal.append_submit(_job(0), timestamp=0.0)
        journal.append_state("job-0", JobState.RUNNING, 1.0, attempt=1)
        journal.append_state("job-0", JobState.RUNNING, 2.0, attempt=2)
        journal.append_state("job-0", JobState.DONE, 3.0, result={"rows": []})
        journal.close()
        record = JobJournal(path).replay()["job-0"]
        assert record.state is JobState.DONE
        assert record.attempt == 2

    def test_replay_tolerates_identical_duplicate_submit(self, tmp_path):
        # The other degraded signature: a group commit's appends hit the
        # file, its fsync failed, the batch was rejected — and the client's
        # retry appended the same submit again.
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path).open()
        journal.append_submit(_job(0), timestamp=0.0)
        journal.append_submit(_job(0), timestamp=1.0)
        journal.append_state("job-0", JobState.RUNNING, 2.0, attempt=1)
        journal.close()
        record = JobJournal(path).replay()["job-0"]
        assert record.state is JobState.RUNNING
        assert record.submitted_at == 0.0  # the first submit wins

    def test_replay_rejects_conflicting_duplicate_submit(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path).open()
        journal.append_submit(_job(0), timestamp=0.0)
        conflicting = AuditJob(
            id="job-0", scenario="figure1", algorithm="unbalanced", seed=9
        )
        journal.append_submit(conflicting, timestamp=1.0)
        journal.close()
        with pytest.raises(JournalError, match="duplicate submit"):
            JobJournal(path).replay()
