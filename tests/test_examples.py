"""Smoke tests: every example script must run cleanly end to end.

Examples are the first thing a new user runs; these tests keep them from
rotting.  Each one is executed as a subprocess (the way users run them) and
checked for a zero exit code plus a key line of its expected output.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

#: (script, substring expected in stdout)
EXAMPLES = [
    ("quickstart.py", "Fairness audit"),
    ("toy_figure1.py", "unbalanced recovered the exhaustive optimum"),
    ("marketplace_hiring.py", "fairness audit (balanced)"),
    ("repair_bias.py", "within-group worker rankings preserved"),
    ("indirect_bias.py", "real bias"),
    ("platform_governance.py", "work share by gender after repairing"),
]


@pytest.mark.parametrize("script,expected", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs_cleanly(script: str, expected: str) -> None:
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout


def test_every_example_file_is_covered() -> None:
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = {script for script, __ in EXAMPLES}
    assert on_disk == covered, (
        "examples and smoke tests out of sync: "
        f"untested={sorted(on_disk - covered)}, missing={sorted(covered - on_disk)}"
    )
