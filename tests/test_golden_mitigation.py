"""Golden regression tests for the mitigation pipeline.

``tests/golden/mitigation_small.json`` pins the exact repaired rankings —
permutation digest, before/after unfairness, NDCG@k — of every registered
repair strategy on a small audited population.  The acceptance bar for the
mitigation suite is *bit-stable repaired rankings*: any change to quota
staggering, tie-breaking, score reassignment or pricing that moves a single
worker fails here before it silently shifts a committed bench.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/test_golden_mitigation.py --regenerate

and review the diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.algorithms import get_algorithm
from repro.repair import repair_ranking
from repro.simulation.config import PaperConfig
from repro.simulation.scenarios import table1_scenario

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "mitigation_small.json"

#: One audited ranking (table1 at 120 workers, the bench's quick scenario)
#: repaired by every strategy.  FA*IR runs at parameters where its quotas
#: bind on many-tiny-group partitionings (see docs/mitigation.md); seeds
#: and parameters are frozen forever.
SCENARIO = {"n_workers": 120, "seed": 42, "function": "f4", "audit_seed": 0}
CASES = {
    "fair_topk": {"strategy": "fair_topk", "min_proportion": 1.0, "alpha": 0.5},
    "det_rerank_greedy": {
        "strategy": "det_rerank",
        "min_proportion": 0.8,
        "strategy_options": {"variant": "greedy"},
    },
    "det_rerank_cons": {
        "strategy": "det_rerank",
        "min_proportion": 0.8,
        "strategy_options": {"variant": "cons"},
    },
    "quantile": {"strategy": "quantile"},
}

#: Absolute tolerance on priced values; permutations must match exactly.
TOLERANCE = 1e-12


def _audited():
    scenario = table1_scenario(
        PaperConfig(n_workers=SCENARIO["n_workers"], seed=SCENARIO["seed"])
    )
    population = scenario.population
    scores = scenario.functions[SCENARIO["function"]](population)
    audit = get_algorithm("balanced").run(
        population,
        scores,
        hist_spec=scenario.hist_spec,
        rng=SCENARIO["audit_seed"],
    )
    return scenario, population, scores, audit


def _run_case(spec: dict) -> dict:
    scenario, population, scores, audit = _audited()
    options = {k: v for k, v in spec.items() if k != "strategy"}
    result = repair_ranking(
        population,
        scores,
        audit.partitioning,
        spec["strategy"],
        hist_spec=scenario.hist_spec,
        **options,
    )
    payload = result.as_dict(include_arrays=True)
    del payload["repaired_scores"]  # the permutation + digest pin the repair
    for key in ("exposure_before", "exposure_after", "exposure_delta"):
        del payload[key]
    payload["runtime_seconds"] = 0.0  # the one non-deterministic field
    return payload


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_mitigation(name):
    assert GOLDEN_PATH.exists(), (
        f"missing golden file {GOLDEN_PATH}; generate it with "
        "'PYTHONPATH=src python tests/test_golden_mitigation.py --regenerate'"
    )
    golden = json.loads(GOLDEN_PATH.read_text())[name]
    actual = _run_case(CASES[name])
    assert actual["strategy"] == golden["strategy"]
    assert actual["params"] == golden["params"]
    # Bit-stable ranking: exact permutation and exact digest.
    assert actual["order_after"] == golden["order_after"], (
        f"{name}: repaired permutation drifted"
    )
    assert actual["ranking_digest"] == golden["ranking_digest"]
    for key in (
        "unfairness_before",
        "unfairness_after",
        "ndcg_at_k",
        "retained_score_mass",
    ):
        assert actual[key] == pytest.approx(golden[key], abs=TOLERANCE), (
            f"{key} drifted in {name}"
        )


def test_golden_covers_every_registered_strategy():
    from repro.repair import available_strategies

    pinned = {spec["strategy"] for spec in CASES.values()}
    assert pinned == set(available_strategies())


def test_golden_repairs_improve_without_wrecking_utility():
    golden = json.loads(GOLDEN_PATH.read_text())
    for name, case in golden.items():
        assert case["unfairness_after"] < case["unfairness_before"], name
        assert case["ndcg_at_k"] >= 0.9, name


def test_reranked_orders_are_permutations():
    golden = json.loads(GOLDEN_PATH.read_text())
    n = SCENARIO["n_workers"]
    for name, case in golden.items():
        assert sorted(case["order_after"]) == list(range(n)), name


def _regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    payload = {name: _run_case(spec) for name, spec in CASES.items()}
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    _ROOT = Path(__file__).resolve().parent.parent
    if str(_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(_ROOT / "src"))

    if "--regenerate" not in sys.argv:
        raise SystemExit("usage: python tests/test_golden_mitigation.py --regenerate")
    _regenerate()
