"""Experiment E2 — Table 1: 500 workers, random functions f1..f5.

Regenerates the full table (5 algorithms x 5 scoring functions), prints the
average EMD next to the paper's reported values, and asserts the paper's
qualitative findings:

* functions using a single observed attribute (f4, f5) exhibit higher
  unfairness than the three mixtures, for every algorithm;
* the proposed heuristics are at least as good as the baselines (within a
  small noise tolerance);
* most algorithms end at (or near) the full partitioning on random data.

Absolute EMD values depend on RNG draws; absolute runtimes on hardware and
implementation (ours is vectorised numpy, the authors' was not).
"""

from __future__ import annotations

import pytest

from conftest import record_result
from repro.core.algorithms import PAPER_ALGORITHMS
from repro.reporting.paper_reference import TABLE1_EMD, TABLE1_RUNTIME
from repro.reporting.tables import format_comparison_table, format_table
from repro.simulation.runner import ExperimentResult, run_scenario
from repro.simulation.scenarios import table1_scenario

MIXTURES = ("f1", "f2", "f3")
SINGLE_ATTRIBUTE = ("f4", "f5")


@pytest.fixture(scope="module")
def table1() -> ExperimentResult:
    return run_scenario(table1_scenario(), algorithms=PAPER_ALGORITHMS, seed=0)


def test_regenerate_table1(benchmark, table1: ExperimentResult) -> None:
    # Benchmark one representative cell (the heuristic the paper leads with).
    scenario = table1_scenario()
    scores = scenario.functions["f1"](scenario.population)
    from repro.core.algorithms import get_algorithm

    benchmark.pedantic(
        lambda: get_algorithm("unbalanced").run(
            scenario.population, scores, hist_spec=scenario.hist_spec
        ),
        rounds=3,
        iterations=1,
    )
    emd_table = format_comparison_table(
        table1,
        TABLE1_EMD,
        "unfairness",
        title="Table 1 — average EMD, 500 workers: measured (paper)",
    )
    runtime_table = format_comparison_table(
        table1,
        TABLE1_RUNTIME,
        "runtime_seconds",
        title="Table 1 — runtime seconds: ours (paper's implementation)",
    )
    partitions_table = format_table(
        table1, "n_partitions", title="partitions found", precision=0
    )
    record_result("table1", "\n\n".join([emd_table, runtime_table, partitions_table]))


def test_single_attribute_functions_most_unfair(
    benchmark, table1: ExperimentResult
) -> None:
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for algorithm in PAPER_ALGORITHMS:
        mixture_max = max(table1.cell(algorithm, f).unfairness for f in MIXTURES)
        for function in SINGLE_ATTRIBUTE:
            assert table1.cell(algorithm, function).unfairness > mixture_max, (
                f"{algorithm}: {function} should exceed all mixtures "
                "(paper observation 1)"
            )


def test_heuristics_competitive_with_baselines(
    benchmark, table1: ExperimentResult
) -> None:
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for function in MIXTURES + SINGLE_ATTRIBUTE:
        best_baseline = max(
            table1.cell(a, function).unfairness
            for a in ("r-unbalanced", "r-balanced", "all-attributes")
        )
        best_heuristic = max(
            table1.cell(a, function).unfairness for a in ("unbalanced", "balanced")
        )
        # "our two algorithms consistently outperform or do as good as all
        # other baselines" — allow 2% noise.
        assert best_heuristic >= 0.98 * best_baseline, function


def test_random_data_drives_toward_full_partitioning(
    benchmark, table1: ExperimentResult
) -> None:
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    full_k = max(row.n_partitions for row in table1.rows)
    for function in MIXTURES + SINGLE_ATTRIBUTE:
        # The paper: "in most cases all the algorithms returned the full
        # partitioning tree".  balanced uses all attributes here.
        row = table1.cell("balanced", function)
        assert row.n_partitions >= 0.9 * full_k
        assert len(row.attributes_used) == 6
