"""Seeded load generator for the audit daemon: SLO curves vs offered load.

Unlike ``run_bench.py``'s in-process ``service`` section (which measures
the engine + journal under a thread pool), this harness exercises the
**real deployment surface**: it forks ``repro.cli serve`` as a
subprocess, submits audit jobs over HTTP through the asyncio front end
(bulk ``POST /v1/jobs/batch``), waits for the daemon to drain, and reads
completion latencies back out of ``GET /v1/jobs?state=DONE``.  Every
run is fully seeded — arrival times, tenant choices, and the sprinkle of
bad submissions in the adversarial mix all come from one
``random.Random(seed)`` — so a load point is reproducible bit-for-bit at
the plan level (wall-clock latencies, of course, are the measurement).

Arrival mixes
-------------

``uniform``
    Evenly spaced arrivals at the offered rate, tenants round-robin.
    The baseline curve: no burstiness, perfectly fair offered load.
``skewed``
    Poisson arrivals (exponential gaps) with a zipf-ish tenant skew
    (tenant *i* chosen with probability proportional to ``1/(i+1)^1.5``)
    — one hot tenant dominating, the case the weighted stride scheduler
    exists for.
``adversarial``
    Bursty arrivals (whole bursts land at one instant, then silence)
    and ~10% bad submissions — duplicate ids and invalid specs — mixed
    into the stream to price the typed-rejection path under load.

Each load point gets a **fresh daemon and workdir**, so journal size and
cache warmth never leak across points.  The emitted section::

    {"daemon": {...knobs...},
     "mixes": [{"mix": "uniform",
                "points": [{"offered_jobs_per_second": ...,
                            "duration_seconds": ...,
                            "submitted": ..., "accepted": ...,
                            "rejected": ..., "completed": ...,
                            "jobs_per_second": ...,
                            "latency_seconds": {"p50": ..., "p99": ...,
                                                "max": ...}}, ...]}, ...]}

is what ``run_bench.py --service-load`` embeds as ``"service_load"`` and
what ``validate_service_load`` checks.  ``python benchmarks/load_gen.py
--smoke`` is the CI gate: a short low-rate run that must validate and
keep p99 under a deliberately generous bound.
"""

from __future__ import annotations

import argparse
import http.client
import importlib.util
import json
import os
import random
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
MIXES = ("uniform", "skewed", "adversarial")
TENANTS = ("acme", "globex", "initech", "umbrella")
#: Seeds are drawn from a small pool on purpose: the sweep measures the
#: *service* path (intake, journal, scheduling, coalescing) on small
#: audit jobs, so identical specs must actually recur — that is what
#: lets the engine-dispatch batching and the cross-job cache engage,
#: exactly as they would for a production tenant re-auditing one
#: scenario under parameter sweeps.
SEED_POOL = 4

# Fraction of adversarial-mix submissions that are intentionally bad
# (half duplicate ids, half invalid specs).
ADVERSARIAL_BAD_FRACTION = 0.10

# CI smoke bound: submit->result p99 under low offered load.  Generous on
# purpose — it catches order-of-magnitude regressions (lost wakeups,
# accidental polling, serialization collapse), not scheduler jitter.
SMOKE_P99_BOUND_SECONDS = 5.0


def _load_run_bench():
    spec = importlib.util.spec_from_file_location(
        "run_bench", Path(__file__).parent / "run_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ---------------------------------------------------------------------- plans


def build_plan(mix: str, rate: float, duration: float, rng: random.Random):
    """Return the seeded submission plan: a list of ``(arrival, spec)``.

    ``arrival`` is seconds from t0; specs are plain ``POST /v1/jobs``
    bodies.  The plan is a pure function of ``(mix, rate, duration,
    rng state)`` — no wall clock, no host entropy.
    """
    count = max(1, int(rate * duration))
    if mix == "uniform":
        arrivals = [i / rate for i in range(count)]
        tenants = [TENANTS[i % len(TENANTS)] for i in range(count)]
    elif mix == "skewed":
        arrivals, clock = [], 0.0
        for _ in range(count):
            clock += rng.expovariate(rate)
            arrivals.append(clock)
        weights = [1.0 / (i + 1) ** 1.5 for i in range(len(TENANTS))]
        tenants = rng.choices(TENANTS, weights=weights, k=count)
    elif mix == "adversarial":
        # Whole bursts land at one instant, then silence until the next
        # burst window — the worst case for queue-depth spikes.
        burst_every = 0.25
        burst_size = max(1, int(rate * burst_every))
        arrivals = [burst_every * (i // burst_size) for i in range(count)]
        tenants = [rng.choice(TENANTS) for _ in range(count)]
    else:
        raise ValueError(f"unknown mix {mix!r}; expected one of {MIXES}")

    plan = []
    for i, (arrival, tenant) in enumerate(zip(arrivals, tenants)):
        spec = {
            "id": f"{mix}-{i:06d}",
            "scenario": "figure1",
            "algorithm": "balanced",
            "seed": rng.randrange(SEED_POOL),
            "tenant": tenant,
        }
        if mix == "adversarial" and rng.random() < ADVERSARIAL_BAD_FRACTION:
            if i > 0 and rng.random() < 0.5:
                spec["id"] = f"{mix}-{rng.randrange(i):06d}"  # duplicate
            else:
                spec["scenario"] = "no-such-scenario"  # invalid spec
        plan.append((arrival, spec))
    return plan


# --------------------------------------------------------------------- daemon


class Daemon:
    """A ``repro.cli serve`` subprocess bound to an ephemeral port."""

    def __init__(
        self,
        workdir: str,
        queue_workers: int,
        batch_max: int,
        chaos: "str | None" = None,
    ):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        command = [
                sys.executable, "-m", "repro.cli", "serve",
                "--workdir", workdir,
                "--host", "127.0.0.1",
                "--port", "0",
                "--queue-limit", "1000000",
                "--queue-workers", str(queue_workers),
                "--batch-max", str(batch_max),
        ]
        if chaos:
            command += ["--chaos", chaos]
        self.proc = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )
        line = self.proc.stdout.readline()
        prefix = "audit service listening on http://"
        if prefix not in line:
            self.proc.kill()
            raise RuntimeError(f"daemon failed to start: {line!r}")
        address = line.split(prefix, 1)[1].split()[0].rstrip("/")
        self.host, port = address.rsplit(":", 1)
        self.port = int(port)

    def connect(self) -> http.client.HTTPConnection:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=60)
        conn.connect()
        # The submit loop is many small request/response round trips;
        # don't let Nagle add 40ms delayed-ACK stalls to each.
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def request(self, conn, method: str, path: str, payload=None):
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)
        self.proc.stdout.close()


# ----------------------------------------------------------------- load point


def _submit_worker(daemon, jobs, t0, bulk_size, totals, lock):
    """Replay one thread's slice of the plan over a persistent connection.

    Consecutive due jobs are coalesced into ``POST /v1/jobs/batch`` bulks
    of up to ``bulk_size`` — the amortization that lets one box clear
    thousands of submissions per second through the HTTP surface.
    """
    conn = daemon.connect()
    accepted = rejected = 0
    try:
        i = 0
        while i < len(jobs):
            now = time.monotonic() - t0
            due = jobs[i][0] - now
            if due > 0:
                time.sleep(due)
            bulk = [jobs[i][1]]
            i += 1
            # Bulk up everything already due (never future arrivals).
            now = time.monotonic() - t0
            while (
                i < len(jobs)
                and len(bulk) < bulk_size
                and jobs[i][0] <= now
            ):
                bulk.append(jobs[i][1])
                i += 1
            status, payload = daemon.request(
                conn, "POST", "/v1/jobs/batch", {"jobs": bulk}
            )
            if status == 202:
                accepted += payload["accepted"]
                rejected += payload["rejected"]
            else:
                rejected += len(bulk)
    finally:
        conn.close()
    with lock:
        totals["accepted"] += accepted
        totals["rejected"] += rejected


def run_point(
    mix: str,
    rate: float,
    duration: float,
    seed: int,
    connections: int = 8,
    bulk_size: int = 16,
    queue_workers: int = 2,
    batch_max: int = 32,
    drain_timeout: float = 600.0,
) -> dict:
    """Run one (mix, offered rate) load point against a fresh daemon."""
    rng = random.Random(f"{seed}:{mix}:{rate:g}")
    plan = build_plan(mix, rate, duration, rng)
    with tempfile.TemporaryDirectory(prefix="load-gen-") as workdir:
        daemon = Daemon(workdir, queue_workers, batch_max)
        try:
            # Round-robin the plan across submitter threads; each slice
            # stays in arrival order.
            slices = [plan[k::connections] for k in range(connections)]
            totals = {"accepted": 0, "rejected": 0}
            lock = threading.Lock()
            t0 = time.monotonic()
            threads = [
                threading.Thread(
                    target=_submit_worker,
                    args=(daemon, part, t0, bulk_size, totals, lock),
                )
                for part in slices
                if part
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            # Drain: the daemon owns completion; poll health until idle.
            conn = daemon.connect()
            deadline = time.monotonic() + drain_timeout
            while True:
                _, health = daemon.request(conn, "GET", "/v1/healthz")
                if health["queued"] == 0 and health["running"] == 0:
                    break
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"{mix}@{rate}: drain timed out with "
                        f"{health['queued']} queued / {health['running']} running"
                    )
                time.sleep(0.05)

            _, listing = daemon.request(
                conn, "GET", f"/v1/jobs?state=DONE&limit={len(plan)}"
            )
            conn.close()
        finally:
            daemon.stop()

    done = listing["jobs"]
    if not done:
        raise RuntimeError(f"{mix}@{rate}: no jobs completed")
    latencies = sorted(job["updated_at"] - job["submitted_at"] for job in done)
    first_in = min(job["submitted_at"] for job in done)
    last_out = max(job["updated_at"] for job in done)
    span = max(last_out - first_in, 1e-9)
    return {
        "mix": mix,
        "offered_jobs_per_second": float(rate),
        "duration_seconds": float(duration),
        "submitted": len(plan),
        "accepted": int(totals["accepted"]),
        "rejected": int(totals["rejected"]),
        "completed": len(done),
        "jobs_per_second": len(done) / span,
        "latency_seconds": {
            "p50": latencies[int(0.50 * (len(latencies) - 1))],
            "p99": latencies[int(0.99 * (len(latencies) - 1))],
            "max": latencies[-1],
        },
    }


# ---------------------------------------------------------------- chaos point

#: Chaos spec of the committed ``"chaos"`` bench section: a 5% seeded
#: fsync failure rate on the journal's group commits — enough injected
#: disk trouble that the daemon demonstrably enters READ_ONLY and the
#: probe loop demonstrably restores it, at a fixed reproducible schedule.
CHAOS_SPEC = "disk-fsync=0.05,seed=42"
#: Offered rate / duration of the chaos point (full and --smoke).
CHAOS_RATE = 200.0
CHAOS_DURATION = 6.0
CHAOS_DURATION_SMOKE = 3.0
#: How long after the drain the daemon gets to probe its way back to
#: HEALTHY before the point is declared stuck.
CHAOS_RECOVERY_TIMEOUT = 30.0


def _health_watcher(daemon, stop, samples):
    """Poll ``/v1/healthz`` every ~10ms, appending ``(t, state)`` samples.

    External observation on purpose: availability and recovery time are
    measured the way a load balancer would see them, not from the
    daemon's own counters.
    """
    conn = daemon.connect()
    try:
        while not stop.is_set():
            try:
                _, health = daemon.request(conn, "GET", "/v1/healthz")
            except (OSError, http.client.HTTPException):
                conn.close()
                conn = daemon.connect()
                continue
            samples.append((time.monotonic(), health["state"]))
            time.sleep(0.01)
    finally:
        conn.close()


def _degraded_episodes(samples):
    """Closed READ_ONLY windows (seconds) observed in a health sample run."""
    episodes, opened = [], None
    for stamp, state in samples:
        if state != "HEALTHY" and opened is None:
            opened = stamp
        elif state == "HEALTHY" and opened is not None:
            episodes.append(stamp - opened)
            opened = None
    return episodes


def _percentile(values, fraction):
    ordered = sorted(values)
    return ordered[int(fraction * (len(ordered) - 1))]


def _submit_with_retry(daemon, conn, spec, totals):
    """Submit one job, retrying degraded rejections and broken connections.

    Returns the (possibly reconnected) connection.  The retry loop is the
    client contract chaos enforces: a 503 ``degraded`` backs off and
    retries; a connection torn mid-response retries and treats the
    resulting 409 ``duplicate_id`` as success (the ghosted first attempt
    was journaled — at-least-once delivery observed from outside).
    """
    backoff = 0.01
    while True:
        totals["attempts"] += 1
        try:
            status, payload = daemon.request(conn, "POST", "/v1/jobs", spec)
        except (OSError, http.client.HTTPException):
            conn.close()
            conn = daemon.connect()
            totals["connection_errors"] += 1
            continue
        if status == 202:
            totals["accepted"] += 1
            return conn
        if status == 409:  # ghosted ack from a torn earlier attempt
            totals["accepted"] += 1
            totals["ghosted_acks"] += 1
            return conn
        # v1 envelope: {"error": {"code": <reason>, ...}}.
        reason = (payload.get("error") or {}).get("code")
        if reason == "degraded":
            totals["rejected_degraded"] += 1
            time.sleep(backoff)
            backoff = min(backoff * 2, 0.5)
            continue
        totals["rejected_other"] += 1
        return conn


def run_chaos_point(
    spec: str = CHAOS_SPEC,
    rate: float = CHAOS_RATE,
    duration: float = CHAOS_DURATION,
    seed: int = 42,
    queue_workers: int = 2,
    batch_max: int = 32,
    drain_timeout: float = 600.0,
) -> dict:
    """One chaos load point: the real daemon under ``--chaos`` fault
    injection, measured from the outside.

    Returns the ``"chaos"`` bench section: availability (fraction of
    health polls answered HEALTHY), degraded-episode recovery-time
    percentiles, sustained jobs/sec under the fault rate, and the
    daemon's chaos/degradation counters.  Raises if any acknowledged job
    is missing from the journal replay or the daemon fails to end
    HEALTHY — the two invariants no amount of injected trouble may bend.
    """
    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.service.journal import JobJournal

    rng = random.Random(f"{seed}:chaos:{rate:g}")
    plan = build_plan("uniform", rate, duration, rng)
    with tempfile.TemporaryDirectory(prefix="load-gen-chaos-") as workdir:
        daemon = Daemon(workdir, queue_workers, batch_max, chaos=spec)
        samples: list = []
        stop = threading.Event()
        watcher = threading.Thread(
            target=_health_watcher, args=(daemon, stop, samples)
        )
        try:
            watcher.start()
            totals = {
                "attempts": 0,
                "accepted": 0,
                "rejected_degraded": 0,
                "rejected_other": 0,
                "connection_errors": 0,
                "ghosted_acks": 0,
            }
            conn = daemon.connect()
            t0 = time.monotonic()
            for arrival, job_spec in plan:
                due = arrival - (time.monotonic() - t0)
                if due > 0:
                    time.sleep(due)
                conn = _submit_with_retry(daemon, conn, job_spec, totals)

            # Drain, then give the probe loop room to close any episode
            # that was still open when the last job finished.
            deadline = time.monotonic() + drain_timeout
            while True:
                try:
                    _, health = daemon.request(conn, "GET", "/v1/healthz")
                except (OSError, http.client.HTTPException):
                    conn.close()
                    conn = daemon.connect()
                    continue
                if health["queued"] == 0 and health["running"] == 0:
                    break
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"chaos@{rate:g}: drain timed out with "
                        f"{health['queued']} queued / {health['running']} running"
                    )
                time.sleep(0.05)
            deadline = time.monotonic() + CHAOS_RECOVERY_TIMEOUT
            while health["state"] != "HEALTHY":
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"chaos@{rate:g}: daemon stuck {health['state']} "
                        f"({health['degraded_reasons']}) after the drain"
                    )
                time.sleep(0.05)
                _, health = daemon.request(conn, "GET", "/v1/healthz")
            final_state = health["state"]

            _, metrics = daemon.request(conn, "GET", "/v1/metrics")
            _, listing = daemon.request(
                conn, "GET", f"/v1/jobs?state=DONE&limit={len(plan)}"
            )
            conn.close()
        finally:
            stop.set()
            watcher.join(timeout=10)
            daemon.stop()
        # The daemon is dead; replay its journal the way a restart would
        # and hold the no-acked-job-lost invariant against it.
        replayed = JobJournal(Path(workdir) / "journal.jsonl").replay()

    done = {job["id"] for job in listing["jobs"]}
    missing = done - set(replayed)
    if missing:
        raise RuntimeError(
            f"chaos@{rate:g}: {len(missing)} acknowledged jobs missing "
            f"from the journal replay (e.g. {sorted(missing)[:3]})"
        )
    if totals["accepted"] != len(done):
        raise RuntimeError(
            f"chaos@{rate:g}: {totals['accepted']} accepted but only "
            f"{len(done)} completed"
        )
    jobs = listing["jobs"]
    span = max(
        max(job["updated_at"] for job in jobs)
        - min(job["submitted_at"] for job in jobs),
        1e-9,
    )
    episodes = _degraded_episodes(samples)
    healthy_polls = sum(1 for _, state in samples if state == "HEALTHY")
    counters = metrics.get("counters", {})
    return {
        "spec": spec,
        "seed": seed,
        "offered_jobs_per_second": float(rate),
        "duration_seconds": float(duration),
        "submitted": len(plan),
        "attempts": totals["attempts"],
        "accepted": totals["accepted"],
        "rejected_degraded": totals["rejected_degraded"],
        "rejected_other": totals["rejected_other"],
        "connection_errors": totals["connection_errors"],
        "completed": len(done),
        "jobs_per_second": len(done) / span,
        "availability": healthy_polls / max(len(samples), 1),
        "health_polls": len(samples),
        "degraded_episodes": len(episodes),
        "recovery_seconds": {
            "p50": _percentile(episodes, 0.50) if episodes else 0.0,
            "p99": _percentile(episodes, 0.99) if episodes else 0.0,
            "max": max(episodes) if episodes else 0.0,
        },
        "final_state": final_state,
        "counters": {
            name: counters.get(name, 0)
            for name in (
                "chaos.faults_injected",
                "service.journal_write_failures",
                "service.degraded_entered",
                "service.degraded_recoveries",
                "service.watchdog_requeues",
            )
        },
    }


def run_load_suite(
    mixes=("uniform", "skewed", "adversarial"),
    rates=(500.0, 1500.0, 3000.0),
    duration: float = 8.0,
    seed: int = 42,
    connections: int = 8,
    bulk_size: int = 16,
    queue_workers: int = 2,
    batch_max: int = 32,
) -> dict:
    """Sweep the offered-load grid and return the ``service_load`` section."""
    sections = []
    for mix in mixes:
        points = []
        for rate in rates:
            print(
                f"[service_load] {mix} @ {rate:g} jobs/s offered "
                f"for {duration:g}s ...",
                flush=True,
            )
            point = run_point(
                mix,
                rate,
                duration,
                seed,
                connections=connections,
                bulk_size=bulk_size,
                queue_workers=queue_workers,
                batch_max=batch_max,
            )
            print(
                f"    {point['jobs_per_second']:.0f} jobs/s sustained, "
                f"p50 {point['latency_seconds']['p50'] * 1000:.0f}ms, "
                f"p99 {point['latency_seconds']['p99'] * 1000:.0f}ms "
                f"({point['completed']}/{point['submitted']} completed, "
                f"{point['rejected']} rejected)",
                flush=True,
            )
            point.pop("mix")
            points.append(point)
        sections.append({"mix": mix, "points": points})
    return {
        "daemon": {
            "queue_workers": queue_workers,
            "batch_max": batch_max,
            "bulk_size": bulk_size,
            "connections": connections,
        },
        "mixes": sections,
    }


# ------------------------------------------------------------------------ CLI


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mix",
        action="append",
        choices=MIXES,
        help="arrival mix to run (repeatable; default: all three)",
    )
    parser.add_argument(
        "--rate",
        action="append",
        type=float,
        help="offered jobs/sec load point (repeatable; default: 500 1500 3000)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=8.0,
        help="seconds of offered load per point (default: 8)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--connections",
        type=int,
        default=8,
        help="persistent submitter connections (default: 8)",
    )
    parser.add_argument(
        "--bulk-size",
        type=int,
        default=16,
        help="max jobs per POST /v1/jobs/batch (default: 16)",
    )
    parser.add_argument(
        "--queue-workers",
        type=int,
        default=2,
        help="daemon worker threads (default: 2)",
    )
    parser.add_argument(
        "--batch-max",
        type=int,
        default=32,
        help="daemon engine-dispatch coalescing limit (default: 32)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the service_load section to this JSON file",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: one short low-rate point per mix (uniform + skewed), "
        "validate the section schema, and fail unless p99 "
        f"< {SMOKE_P99_BOUND_SECONDS:g}s",
    )
    parser.add_argument(
        "--chaos",
        nargs="?",
        const=CHAOS_SPEC,
        default=None,
        metavar="SPEC",
        help="run the chaos point instead of the load sweep: serve --chaos "
        f"SPEC (default {CHAOS_SPEC!r}) under offered load, measure "
        "availability and recovery time, and fail unless the daemon ends "
        "HEALTHY with no acknowledged job lost",
    )
    args = parser.parse_args(argv)

    if args.chaos:
        duration = CHAOS_DURATION_SMOKE if args.smoke else min(
            args.duration, CHAOS_DURATION
        )
        rate = args.rate[0] if args.rate else CHAOS_RATE
        print(
            f"[chaos] {args.chaos!r} @ {rate:g} jobs/s offered "
            f"for {duration:g}s ...",
            flush=True,
        )
        section = run_chaos_point(
            spec=args.chaos,
            rate=rate,
            duration=duration,
            seed=args.seed,
            queue_workers=args.queue_workers,
            batch_max=args.batch_max,
        )
        print(
            "    availability {:.1%}, {} degraded episodes "
            "(recovery p50 {:.0f}ms p99 {:.0f}ms), {:.0f} jobs/s, "
            "ends {} with {}/{} acked jobs completed".format(
                section["availability"],
                section["degraded_episodes"],
                section["recovery_seconds"]["p50"] * 1000,
                section["recovery_seconds"]["p99"] * 1000,
                section["jobs_per_second"],
                section["final_state"],
                section["completed"],
                section["accepted"],
            ),
            flush=True,
        )
        run_bench = _load_run_bench()
        try:
            run_bench.validate_chaos(section)
        except ValueError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print("chaos section validates against the bench schema")
        if args.out:
            Path(args.out).write_text(json.dumps(section, indent=2) + "\n")
            print(f"wrote {args.out}")
        degraded = max(
            section["degraded_episodes"],
            section["counters"]["service.degraded_recoveries"],
        )
        if args.smoke and degraded < 1:
            # The smoke point exists to exercise the degrade/recover
            # cycle; a run that never degraded proves nothing.  Counted
            # both ways: externally (health polls) and from the daemon's
            # own recovery counter, since a sub-poll-interval episode can
            # slip between samples.
            print("FAIL: chaos smoke observed no degraded episode", file=sys.stderr)
            return 1
        return 0

    if args.smoke:
        mixes = tuple(args.mix) if args.mix else ("uniform", "skewed")
        rates = tuple(args.rate) if args.rate else (100.0,)
        duration = min(args.duration, 4.0)
    else:
        mixes = tuple(args.mix) if args.mix else MIXES
        rates = tuple(args.rate) if args.rate else (500.0, 1500.0, 3000.0)
        duration = args.duration

    section = run_load_suite(
        mixes=mixes,
        rates=rates,
        duration=duration,
        seed=args.seed,
        connections=args.connections,
        bulk_size=args.bulk_size,
        queue_workers=args.queue_workers,
        batch_max=args.batch_max,
    )

    run_bench = _load_run_bench()
    try:
        run_bench.validate_service_load(section)
    except ValueError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print("service_load section validates against the bench schema")

    if args.out:
        Path(args.out).write_text(json.dumps(section, indent=2) + "\n")
        print(f"wrote {args.out}")

    if args.smoke:
        failures = []
        for mix_section in section["mixes"]:
            for point in mix_section["points"]:
                p99 = point["latency_seconds"]["p99"]
                if p99 >= SMOKE_P99_BOUND_SECONDS:
                    failures.append(
                        f"{mix_section['mix']}@{point['offered_jobs_per_second']:g}: "
                        f"p99 {p99:.2f}s breaches the "
                        f"{SMOKE_P99_BOUND_SECONDS:g}s smoke bound"
                    )
        for message in failures:
            print(f"FAIL: {message}", file=sys.stderr)
        if failures:
            return 1
        print(f"smoke: all p99s under {SMOKE_P99_BOUND_SECONDS:g}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
