"""Experiment E1 — the paper's Figure 1 toy example.

Regenerates the optimum partitioning of the toy Gender x Language data:
exhaustive search must return exactly the structure the figure shows
({Male-English, Male-Indian, Male-Other, Female}), the ``unbalanced``
heuristic must recover it, and ``balanced`` must fall short because the
optimum is an unbalanced tree.
"""

from __future__ import annotations

import pytest

from conftest import record_result
from repro import build_split_tree, get_algorithm, render_split_tree, toy_population
from repro.simulation.generator import TOY_OPTIMAL_GROUPS


@pytest.fixture(scope="module")
def toy_setup():
    population = toy_population()
    return population, population.observed_column("qualification")


def test_figure1_exhaustive_optimum(benchmark, toy_setup) -> None:
    population, scores = toy_setup
    result = benchmark.pedantic(
        lambda: get_algorithm("exhaustive").run(population, scores),
        rounds=3,
        iterations=1,
    )
    labels = sorted(p.label(population.schema) for p in result.partitioning)
    assert labels == sorted(TOY_OPTIMAL_GROUPS)

    tree = render_split_tree(build_split_tree(result.partitioning), population.schema)
    record_result(
        "figure1",
        "Figure 1 — optimum partitioning of the toy example\n"
        f"average pairwise EMD: {result.unfairness:.3f}\n"
        f"candidates evaluated: {result.n_evaluations}\n" + tree,
    )


def test_figure1_unbalanced_recovers_optimum(benchmark, toy_setup) -> None:
    population, scores = toy_setup
    optimum = get_algorithm("exhaustive").run(population, scores)
    result = benchmark.pedantic(
        lambda: get_algorithm("unbalanced").run(population, scores),
        rounds=3,
        iterations=1,
    )
    assert result.partitioning.canonical_key() == optimum.partitioning.canonical_key()
    assert result.unfairness == pytest.approx(optimum.unfairness)


def test_figure1_balanced_cannot_express_optimum(benchmark, toy_setup) -> None:
    population, scores = toy_setup
    optimum = get_algorithm("exhaustive").run(population, scores)
    result = benchmark.pedantic(
        lambda: get_algorithm("balanced").run(population, scores),
        rounds=3,
        iterations=1,
    )
    # The optimum keeps Female whole while splitting Male by language; a
    # balanced tree cannot do that, so balanced must be strictly below.
    assert result.unfairness < optimum.unfairness
