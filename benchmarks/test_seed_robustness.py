"""Robustness R1 — the paper's rerun-variability remark, quantified.

Paper (§Qualitative Results): "since the function scores were generated at
random within the specified range, various runs of the experiments resulted
in different behavior, where in some cases, unbalanced performed as well as
balanced."

This benchmark reruns the Table 3 experiment across several population and
score seeds and measures how stable each algorithm's result is.  Asserted
shapes: ``balanced`` finds the pinned gender value (≈0.8) for f6 on *every*
seed; the randomised baselines fluctuate across seeds (that is what makes
them baselines); and every heuristic value stays within [0, 1].
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import record_result
from repro.core.algorithms import get_algorithm
from repro.marketplace.biased import paper_biased_functions
from repro.simulation.generator import generate_paper_population

SEEDS = (11, 22, 33, 44, 55)
ALGORITHMS = ("balanced", "unbalanced", "r-balanced")


def test_seed_robustness_on_f6_and_f7(benchmark) -> None:
    def sweep():
        values: dict[tuple[str, str], list[float]] = {
            (a, f): [] for a in ALGORITHMS for f in ("f6", "f7")
        }
        for seed in SEEDS:
            population = generate_paper_population(1500, seed=seed)
            functions = paper_biased_functions(seed=seed)
            for function_name in ("f6", "f7"):
                scores = functions[function_name](population)
                for algorithm in ALGORITHMS:
                    result = get_algorithm(algorithm).run(
                        population, scores, rng=seed
                    )
                    values[(algorithm, function_name)].append(result.unfairness)
        return values

    values = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"seed robustness over {len(SEEDS)} population/score seeds (1500 workers)",
        f"{'algorithm':>12}  {'fn':>4}  {'mean':>6}  {'std':>6}  {'min':>6}  {'max':>6}",
    ]
    for (algorithm, function_name), run_values in sorted(values.items()):
        arr = np.array(run_values)
        lines.append(
            f"{algorithm:>12}  {function_name:>4}  {arr.mean():>6.3f}"
            f"  {arr.std():>6.3f}  {arr.min():>6.3f}  {arr.max():>6.3f}"
        )
    record_result("seed_robustness", "\n".join(lines))

    # balanced hits the pinned f6 construction value on every seed.
    f6_balanced = np.array(values[("balanced", "f6")])
    assert np.allclose(f6_balanced, 0.8, atol=0.03)
    # The informed heuristic is at least as stable as the random baseline.
    assert np.std(values[("balanced", "f7")]) <= np.std(
        values[("r-balanced", "f7")]
    ) + 0.01
    for run_values in values.values():
        arr = np.array(run_values)
        assert arr.min() >= 0.0 and arr.max() <= 1.0
