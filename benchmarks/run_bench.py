#!/usr/bin/env python
"""Fixed benchmark suite emitting a machine-readable perf trajectory.

Runs the paper's algorithms over the table scenarios on both execution
backends and writes ``benchmarks/results/BENCH_<timestamp>.json`` —
wall-clock per case, the engine's effort counters, the traced span
breakdown, and a no-op-tracer overhead measurement.  Future PRs compare
their own ``BENCH_*.json`` against the committed one to prove speedups.

Modes::

    python benchmarks/run_bench.py            # full: table1 (500) + table2 (7300)
    python benchmarks/run_bench.py --quick    # CI smoke: small table1 only
    python benchmarks/run_bench.py --scaling  # + atom-vs-member scaling sweep

``--scaling`` adds a ``"scaling"`` section timing one ``worstAttribute``
greedy step per population (10k / 100k / 1M workers; 2k / 20k with
``--quick``) under three cost models — atom table, member arrays, and
``mode="full"`` — and ``--assert-atom-speedup`` turns the atom-beats-member
expectation into an exit code for CI (see docs/performance.md).

Every run also records a ``"service"`` section: audit-daemon throughput
(jobs/sec with the queue filled to depth 8) and submit→result latency
through the crash-safe journal (see docs/service.md).

``--streaming`` adds a ``"streaming"`` section benchmarking mutable-
population audits (see docs/streaming.md): per population size it streams
batches of ``STREAMING_DELTA_BATCH`` random mutations into a
``MutablePopulation`` and times the O(Δ·k) delta re-price, the O(atoms)
streaming re-audit, and the full from-scratch rebuild the streaming path
replaces — asserting along the way that the streaming audit's result is
bit-identical to the rebuild's.  ``--assert-streaming-speedup`` turns the
rebuild/streaming speedup expectation into an exit code for CI.

``--kernels`` adds a ``"kernels"`` section (see docs/performance.md): per
population size it derives the real atom-table pmf stack from the table1
scenario and times ``pairwise_matrix`` under every available kernel
backend (the per-pair ``scalar`` loop the fused kernels replace vs the
compiled ``numpy``/``numba`` blocks), asserting bit-identical matrices
along the way; it then times the same audit *job* cold vs warm through a
:class:`~repro.service.cache.CrossJobCache` + ``CachingEngineFactory`` —
the exact code path the audit daemon uses — so the warm figure includes
the scenario memo, the atom-table transplant and the seeded value cache.
``--assert-kernel-speedup`` turns both expectations (compiled beats
scalar; warm beats cold by >=2x full / >=1.2x quick) into an exit code
for CI.

``--mitigation`` adds a ``"mitigation"`` section benchmarking the repair
suite (see docs/mitigation.md): per scenario it audits the bench function
once (balanced search), then repairs the worst partitioning with every
registered strategy — FA*IR quotas, both deterministic re-ranker variants,
and the quantile score repair — recording unfairness before/after, NDCG@k,
retained score mass, runtime and the repaired ranking's digest.  Every
case runs twice and asserts the digests match (repairs are bit-stable);
``--assert-mitigation-improvement`` turns the unfairness-decreases and
NDCG-floor expectations into an exit code for CI.

The payload layout is versioned (``repro.bench/v1``) and checked by
:func:`validate_bench_payload` before anything is written, so a schema
drift fails the run instead of poisoning the trajectory.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.core.algorithms import PAPER_ALGORITHMS, get_algorithm  # noqa: E402
from repro.core.partition import Partition  # noqa: E402
from repro.core.splitting import split_partitions  # noqa: E402
from repro.engine.engine import EvaluationEngine  # noqa: E402
from repro.obs import MetricsRegistry, Tracer  # noqa: E402
from repro.obs.tracer import NULL_TRACER  # noqa: E402
from repro.simulation.config import PaperConfig  # noqa: E402
from repro.simulation.scenarios import table1_scenario, table2_scenario  # noqa: E402

BENCH_SCHEMA = "repro.bench/v1"
RESULTS_DIR = Path(__file__).resolve().parent / "results"
BACKENDS = ("sequential", "process")
#: Arrival mixes of the ``--service-load`` SLO sweep (benchmarks/load_gen.py).
LOAD_MIXES = ("uniform", "skewed", "adversarial")
#: Offered jobs/sec grid of the service-load sweep (full / --quick).
LOAD_RATES = (500.0, 1500.0, 3000.0)
LOAD_RATES_QUICK = (100.0, 300.0, 600.0)
#: One fixed scoring function per scenario keeps the suite comparable
#: across PRs; f4 exercises every protected attribute's weight draw.
BENCH_FUNCTION = "f4"
#: Population sizes of the scaling suite (``--scaling``): the atom path's
#: per-query cost should stay ~flat across this sweep while the member and
#: mode="full" paths grow linearly with the population.
SCALING_POPULATIONS = (10_000, 100_000, 1_000_000)
SCALING_POPULATIONS_QUICK = (2_000, 20_000)
#: The three cost models the scaling suite compares on the same greedy step.
SCALING_PATHS = ("atom", "member", "full")
#: Mutations per streamed batch in the ``--streaming`` suite — "small delta"
#: relative to every population size in the sweep.
STREAMING_DELTA_BATCH = 64
#: The three re-audit strategies the streaming suite compares per batch.
STREAMING_PATHS = ("delta_rescore", "streaming_audit", "full_rebuild")
#: Row cap for the kernel-backend comparison: the scalar reference pays one
#: Python-level call per *unique* row pair, so an uncapped 1M-worker atom
#: stack would turn the bench into a scalar-loop endurance test.  The cap
#: keeps the comparison honest (same stack for every backend) and bounded.
KERNEL_STACK_CAP = 512
#: Warm/cold speedup the ``--assert-kernel-speedup`` gate requires at the
#: largest population (full mode; ``--quick`` uses the smaller bar).
KERNEL_CACHE_SPEEDUP_FULL = 2.0
KERNEL_CACHE_SPEEDUP_QUICK = 1.2
#: The repair sweep of the ``--mitigation`` suite: every registered
#: strategy, with both deterministic re-ranker variants spelled out.
#: FA*IR runs at alpha=0.5 / min_proportion=1.0 — on the audits' many-
#: tiny-group partitionings the canonical alpha=0.1 tail test leaves the
#: binomial quotas at zero (a no-op), so the bench uses parameters at
#: which the quotas demonstrably bind (see docs/mitigation.md).
MITIGATION_STRATEGIES = (
    ("fair_topk", {"alpha": 0.5, "min_proportion": 1.0}),
    ("det_rerank", {"min_proportion": 0.8, "strategy_options": {"variant": "greedy"}}),
    ("det_rerank", {"min_proportion": 0.8, "strategy_options": {"variant": "cons"}}),
    ("quantile", {}),
)
#: NDCG@k floor the ``--assert-mitigation-improvement`` gate holds the
#: re-ranking strategies to (the quantile score repair rewrites scores
#: wholesale, so only its improvement is gated, not its NDCG).
MITIGATION_NDCG_FLOOR = 0.9

_ENGINE_COUNTERS = (
    "n_evaluations",
    "n_full_evaluations",
    "n_incremental_evaluations",
    "cache_hits",
    "pair_distances_computed",
    "pair_distances_full",
)


def _suite(quick: bool) -> list[tuple[str, object]]:
    """(label, scenario) pairs of the fixed suite."""
    if quick:
        return [("table1-quick", table1_scenario(PaperConfig(n_workers=120, seed=42)))]
    return [
        ("table1-500", table1_scenario(PaperConfig(n_workers=500, seed=42))),
        ("table2-7300", table2_scenario(PaperConfig(n_workers=7300, seed=42))),
    ]


def _run_case(scenario, scores, algorithm: str, backend: str) -> dict:
    """One audit: wall-clock + engine counters + traced span breakdown."""
    tracer = Tracer()
    metrics = MetricsRegistry()
    start = time.perf_counter()
    result = get_algorithm(algorithm).run(
        scenario.population,
        scores,
        hist_spec=scenario.hist_spec,
        rng=0,
        backend=backend,
        tracer=tracer,
        metrics=metrics,
    )
    wall = time.perf_counter() - start
    return {
        "scenario": scenario.name,
        "algorithm": algorithm,
        "function": BENCH_FUNCTION,
        "backend": backend,
        "wall_seconds": wall,
        "unfairness": result.unfairness,
        "n_partitions": result.partitioning.k,
        "engine": {name: getattr(result, name) for name in _ENGINE_COUNTERS},
        "breakdown": tracer.breakdown(),
        "metrics": metrics.as_dict(),
    }


def _measure_overhead(scenario, scores, repeats: int) -> dict:
    """Cost of the *disabled* tracer on the balanced audit.

    Two views, both recorded:

    * an interleaved A/B of the default run (``tracer=None``) against an
      explicit ``NULL_TRACER`` run — both exercise the disabled-tracer
      path, so their relative difference bounds measurement noise;
    * an analytic estimate: spans-per-audit (counted on a traced run)
      times the microbenchmarked cost of one ``NULL_TRACER.span()`` call,
      as a fraction of the audit's wall time.
    """

    def run_once(tracer) -> float:
        start = time.perf_counter()
        get_algorithm("balanced").run(
            scenario.population,
            scores,
            hist_spec=scenario.hist_spec,
            rng=0,
            tracer=tracer,
        )
        return time.perf_counter() - start

    baseline, noop = [], []
    run_once(None)  # warm caches before timing
    for _ in range(repeats):
        baseline.append(run_once(None))
        noop.append(run_once(NULL_TRACER))
    # Both arms execute identical disabled-tracer code, so min-of-N — the
    # low-noise timing estimator — is the honest comparator; the median
    # picks up scheduler jitter, which the fused kernels' faster audits no
    # longer amortise (the 2% budget check was flaking on pure noise).
    baseline_s = min(baseline)
    noop_s = min(noop)

    probe = Tracer()
    run_once(probe)
    n_spans = sum(1 for _ in probe.iter_spans())

    iterations = 100_000
    start = time.perf_counter()
    for _ in range(iterations):
        with NULL_TRACER.span("bench.noop"):
            pass
    span_ns = (time.perf_counter() - start) / iterations * 1e9

    return {
        "repeats": repeats,
        "baseline_seconds": baseline_s,
        "noop_seconds": noop_s,
        "relative": abs(noop_s - baseline_s) / baseline_s,
        # Worst intra-arm spread: the measurement's own noise floor.  An
        # inter-arm delta below it is indistinguishable from scheduler
        # jitter, so the budget check in main() only fails above both.
        "noise": max(
            (max(baseline) - min(baseline)) / baseline_s,
            (max(noop) - min(noop)) / noop_s,
        ),
        "spans_per_audit": n_spans,
        "noop_span_ns": span_ns,
        "estimated_fraction": n_spans * span_ns * 1e-9 / noop_s,
    }


def _time_scaling_population(n_workers: int, repeats: int) -> dict:
    """One scaling measurement: the cost of *scoring every candidate
    attribute* of a ``worstAttribute`` greedy step under each cost model.

    * ``atom`` — grouped aggregations over the atom table
      (``score_attribute_splits``; never touches member arrays);
    * ``member`` — the legacy route (``use_atoms=False``): materialise every
      candidate's children as member arrays and batch-score them;
    * ``full`` — the same member route under ``mode="full"``'s dense
      cache-less baseline.

    The winner's materialisation (one ``split_partitions`` call, identical
    O(n) work on every path) is excluded so the numbers isolate what the
    atom table changes.  Caches are reset between repeats so every repeat
    pays cold-query prices; the atom table itself is built once (that is
    its contract) and its build time is reported separately.
    """
    scenario = table1_scenario(PaperConfig(n_workers=n_workers, seed=42))
    population = scenario.population
    scores = scenario.functions[BENCH_FUNCTION](population)
    candidates = list(population.schema.protected_names)
    root = [Partition(population.all_indices())]
    entry: dict = {"population": population.size, "paths": {}}
    for path in SCALING_PATHS:
        kwargs = {
            "atom": {"use_atoms": True},
            "member": {"use_atoms": False},
            "full": {"mode": "full"},
        }[path]
        engine = EvaluationEngine(
            population, scores, hist_spec=scenario.hist_spec, **kwargs
        )
        if path == "atom":
            build_start = time.perf_counter()
            table = engine.atom_table
            entry["atom_table_build_seconds"] = time.perf_counter() - build_start
            entry["n_atoms"] = table.n_atoms
        times = []
        for _ in range(repeats):
            engine.reset_caches()
            start = time.perf_counter()
            if path == "atom":
                scores_out = engine.score_attribute_splits(root, candidates)
                assert scores_out is not None, "root must resolve to atom rows"
            else:
                children_per_candidate = [
                    split_partitions(population, root, attribute)
                    for attribute in candidates
                ]
                scores_out = engine.score_many(children_per_candidate)
            times.append(time.perf_counter() - start)
            assert len(scores_out) == len(candidates)
        engine.close()
        entry["paths"][path] = {
            "repeats": times,
            "median": statistics.median(times),
            "min": min(times),
        }
    return entry


def run_scaling(quick: bool, repeats: int) -> dict:
    """The atom-vs-member-vs-full scaling sweep (one dict per population)."""
    populations = SCALING_POPULATIONS_QUICK if quick else SCALING_POPULATIONS
    cases = []
    for n_workers in populations:
        print(f"[scaling] {n_workers} workers ...", flush=True)
        case = _time_scaling_population(n_workers, repeats)
        cases.append(case)
        paths = case["paths"]
        print(
            "    atom {:.4f}s  member {:.4f}s  full {:.4f}s  ({} atoms)".format(
                paths["atom"]["median"],
                paths["member"]["median"],
                paths["full"]["median"],
                case["n_atoms"],
            ),
            flush=True,
        )
    return {"function": BENCH_FUNCTION, "repeats": repeats, "cases": cases}


def scaling_speedup(scaling: dict) -> tuple[int, float]:
    """(largest population, member/atom median speedup) of a scaling dict."""
    largest = max(scaling["cases"], key=lambda case: case["population"])
    atom = largest["paths"]["atom"]["median"]
    member = largest["paths"]["member"]["median"]
    return largest["population"], member / atom if atom > 0 else float("inf")


def _time_streaming_population(n_workers: int, repeats: int) -> dict:
    """One streaming measurement: re-audit cost after a 64-mutation batch.

    Three strategies are timed on the *same* mutated state each repeat:

    * ``delta_rescore`` — re-price the previous audit's groups only
      (O(Δ·k); no search);
    * ``streaming_audit`` — full re-search through the persistent
      :class:`StreamingAuditor` (O(atoms); never touches member arrays);
    * ``full_rebuild`` — the route streaming replaces: freeze the store
      back into member arrays and run a from-scratch batch audit (O(n)).

    Each repeat asserts the streaming audit is bit-identical to the
    rebuild (same unfairness float, same groups) — the bench doubles as
    an equivalence check at populations the unit tests never reach.
    """
    import numpy as np

    from repro.engine.streaming import StreamingAuditor
    from repro.marketplace import MutablePopulation, random_mutation_mix

    scenario = table1_scenario(PaperConfig(n_workers=n_workers, seed=42))
    population = scenario.population
    scores = scenario.functions[BENCH_FUNCTION](population)
    store = MutablePopulation.from_population(
        population, scores, hist_spec=scenario.hist_spec
    )
    auditor = StreamingAuditor(store)
    entry: dict = {
        "population": population.size,
        "delta_batch": STREAMING_DELTA_BATCH,
    }
    rng = np.random.default_rng(42)
    intake: list[float] = []
    times: dict = {path: [] for path in STREAMING_PATHS}
    stale_deltas = 0

    def stream_batch() -> None:
        mutations = random_mutation_mix(store, rng, STREAMING_DELTA_BATCH)
        start = time.perf_counter()
        for mutation in mutations:
            store.apply(mutation)
        intake.append(time.perf_counter() - start)

    try:
        start = time.perf_counter()
        auditor.audit()
        entry["first_audit_seconds"] = time.perf_counter() - start
        entry["n_atoms"] = auditor.state.n_atoms

        # Steady-state delta loop: one untimed warm-up pays the one-off
        # O(k²) tracker seed, then each batch is re-priced without an
        # intervening audit — the monitor's between-audits regime.
        stream_batch()
        auditor.rescore_delta()
        for _ in range(repeats):
            stream_batch()
            start = time.perf_counter()
            delta_report = auditor.rescore_delta()
            times["delta_rescore"].append(time.perf_counter() - start)
            if delta_report is not None and delta_report.stale:
                stale_deltas += 1
                auditor.audit()  # restore a live frontier, untimed
                auditor.rescore_delta()

        # Audit-vs-rebuild loop: after each batch, the streaming re-audit
        # races the from-scratch rebuild it replaces on identical state.
        for _ in range(repeats):
            stream_batch()
            start = time.perf_counter()
            report = auditor.audit()
            times["streaming_audit"].append(time.perf_counter() - start)

            start = time.perf_counter()
            frozen, frozen_scores = store.to_population()
            result = get_algorithm(auditor.algorithm).run(
                frozen,
                frozen_scores,
                hist_spec=store.hist_spec,
                metric=auditor.metric,
                rng=auditor.seed,
            )
            times["full_rebuild"].append(time.perf_counter() - start)

            assert report.unfairness == result.unfairness, (
                "streaming audit diverged from the batch rebuild "
                f"({report.unfairness!r} != {result.unfairness!r})"
            )
            batch_groups = sorted(
                tuple(sorted(p.constraints)) for p in result.partitioning
            )
            stream_groups = sorted(tuple(sorted(g)) for g in report.groups)
            assert stream_groups == batch_groups, "streaming chose different groups"
    finally:
        auditor.close()
    entry["mutations_per_second"] = (
        STREAMING_DELTA_BATCH * len(intake) / sum(intake)
    )
    entry["stale_deltas"] = stale_deltas
    entry["paths"] = {
        path: {
            "repeats": series,
            "median": statistics.median(series),
            "min": min(series),
        }
        for path, series in times.items()
    }
    # The headline number: the O(Δ·k) delta re-price against the O(n)
    # from-scratch rebuild it replaces between full audits.
    entry["speedup"] = (
        entry["paths"]["full_rebuild"]["median"]
        / entry["paths"]["delta_rescore"]["median"]
    )
    entry["audit_speedup"] = (
        entry["paths"]["full_rebuild"]["median"]
        / entry["paths"]["streaming_audit"]["median"]
    )
    return entry


def run_streaming(quick: bool, repeats: int) -> dict:
    """The streaming-vs-rebuild sweep (one dict per population)."""
    populations = SCALING_POPULATIONS_QUICK if quick else SCALING_POPULATIONS
    cases = []
    for n_workers in populations:
        print(f"[streaming] {n_workers} workers ...", flush=True)
        case = _time_streaming_population(n_workers, repeats)
        cases.append(case)
        paths = case["paths"]
        print(
            "    delta {:.5f}s  audit {:.4f}s  rebuild {:.4f}s  "
            "({:.1f}x, {:.0f} mutations/s)".format(
                paths["delta_rescore"]["median"],
                paths["streaming_audit"]["median"],
                paths["full_rebuild"]["median"],
                case["speedup"],
                case["mutations_per_second"],
            ),
            flush=True,
        )
    return {
        "function": BENCH_FUNCTION,
        "algorithm": "balanced",
        "delta_batch": STREAMING_DELTA_BATCH,
        "repeats": repeats,
        "cases": cases,
    }


def streaming_speedup(streaming: dict) -> tuple[int, float]:
    """(largest population, rebuild/streaming speedup) of a streaming dict."""
    largest = max(streaming["cases"], key=lambda case: case["population"])
    return largest["population"], largest["speedup"]


def _time_kernels_population(n_workers: int, repeats: int) -> dict:
    """One kernel measurement: compiled kernels vs the scalar loop on the
    scenario's real atom pmfs, and a cold-vs-warm cross-job cache A/B.

    * **kernel comparison** — build the table1 atom table, normalise its
      count rows into the pmf stack the engine feeds the kernels, and time
      ``pairwise_matrix`` under every available backend on the same
      (capped, see :data:`KERNEL_STACK_CAP`) stack.  Every backend's
      matrix is asserted ``np.array_equal`` to the first — the bench
      doubles as a parity check at stacks the unit tests never reach.
    * **cache A/B** — run the same audit job twice through one
      :class:`~repro.service.cache.CrossJobCache`: the cold pass pays for
      scenario generation, the atom-table build and every objective
      evaluation; the warm pass replays it against the scenario memo, the
      transplanted atom table and the seeded value cache — exactly what a
      repeat job on the audit daemon sees.  Warm results are asserted
      bit-identical to cold before any timing is trusted.
    """
    import numpy as np

    from repro.engine.atoms import AtomTable
    from repro.engine.kernels import kernel_backend_status, pairwise_matrix
    from repro.metrics import get_metric
    from repro.service.cache import CrossJobCache, cached_audit

    scenario = table1_scenario(PaperConfig(n_workers=n_workers, seed=42))
    population = scenario.population
    scores = scenario.functions[BENCH_FUNCTION](population)
    spec = scenario.hist_spec
    table = AtomTable.build(population, spec.bin_indices(scores), spec.bins)
    counts = table.counts.astype(np.float64)
    sums = counts.sum(axis=1, keepdims=True)
    pmfs = np.divide(counts, sums, out=np.zeros_like(counts), where=sums > 0)
    stack = np.ascontiguousarray(pmfs[:KERNEL_STACK_CAP])
    metric = get_metric("emd")

    entry: dict = {
        "population": population.size,
        "n_atoms": table.n_atoms,
        "stack_rows": int(stack.shape[0]),
        "backends": {},
    }
    reference = None
    for name in kernel_backend_status()["available"]:
        times = []
        matrix = None
        for _ in range(repeats):
            start = time.perf_counter()
            matrix = pairwise_matrix(metric, stack, spec, kernel=name)
            times.append(time.perf_counter() - start)
        if reference is None:
            reference = matrix
        else:
            assert np.array_equal(matrix, reference), f"kernel {name!r} diverged"
        entry["backends"][name] = {
            "repeats": times,
            "median": statistics.median(times),
            "min": min(times),
        }

    # ---- cold vs warm through the daemon's cross-job cache code path.
    cache = CrossJobCache(max_bytes=256 * 1024 * 1024)
    scenario_key = f"table1-{n_workers}"

    def run_job():
        memo = cache.scenario(
            scenario_key,
            n_workers,
            lambda: table1_scenario(PaperConfig(n_workers=n_workers, seed=42)),
        )
        job_scores = memo.functions[BENCH_FUNCTION](memo.population)
        return cached_audit(
            cache,
            "balanced",
            memo.population,
            job_scores,
            hist_spec=memo.hist_spec,
            rng=0,
            owner=f"scenario:{scenario_key}",
        )

    cold_times, warm_times = [], []
    cold_result = None
    for _ in range(min(repeats, 2)):  # each cold pass regenerates the scenario
        cache.clear()
        start = time.perf_counter()
        cold_result = run_job()
        cold_times.append(time.perf_counter() - start)
    for _ in range(repeats):
        start = time.perf_counter()
        warm_result = run_job()
        warm_times.append(time.perf_counter() - start)
        assert warm_result.unfairness == cold_result.unfairness, (
            "warm cache run diverged from the cold run "
            f"({warm_result.unfairness!r} != {cold_result.unfairness!r})"
        )
        assert (
            warm_result.partitioning.canonical_key()
            == cold_result.partitioning.canonical_key()
        ), "warm cache run chose different groups"
    assert cache.hits > 0, "warm passes never hit the cross-job cache"
    entry["cache"] = {
        "cold": {
            "repeats": cold_times,
            "median": statistics.median(cold_times),
            "min": min(cold_times),
        },
        "warm": {
            "repeats": warm_times,
            "median": statistics.median(warm_times),
            "min": min(warm_times),
        },
        "speedup": statistics.median(cold_times) / statistics.median(warm_times),
        "hits": cache.hits,
        "entries": cache.stats()["entries"],
    }
    return entry


def run_kernels(quick: bool, repeats: int) -> dict:
    """The compiled-kernel + cross-job-cache sweep (one dict per population)."""
    from repro.engine.kernels import kernel_backend_status

    populations = SCALING_POPULATIONS_QUICK if quick else SCALING_POPULATIONS
    cases = []
    for n_workers in populations:
        print(f"[kernels] {n_workers} workers ...", flush=True)
        case = _time_kernels_population(n_workers, repeats)
        cases.append(case)
        backends = case["backends"]
        compiled = backends["numpy"]["median"]
        scalar = backends["scalar"]["median"]
        print(
            "    numpy {:.5f}s  scalar {:.5f}s  ({:.1f}x over {} rows)  "
            "cache cold {:.3f}s warm {:.3f}s ({:.1f}x)".format(
                compiled,
                scalar,
                scalar / compiled if compiled > 0 else float("inf"),
                case["stack_rows"],
                case["cache"]["cold"]["median"],
                case["cache"]["warm"]["median"],
                case["cache"]["speedup"],
            ),
            flush=True,
        )
    return {
        "function": BENCH_FUNCTION,
        "metric": "emd",
        "stack_cap": KERNEL_STACK_CAP,
        "repeats": repeats,
        "status": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in kernel_backend_status().items()
        },
        "cases": cases,
    }


def kernel_speedups(kernels: dict) -> tuple[int, float, float]:
    """(largest population, scalar/compiled speedup, cold/warm speedup)."""
    largest = max(kernels["cases"], key=lambda case: case["population"])
    compiled = largest["backends"]["numpy"]["median"]
    scalar = largest["backends"]["scalar"]["median"]
    kernel = scalar / compiled if compiled > 0 else float("inf")
    return largest["population"], kernel, largest["cache"]["speedup"]


def run_service_bench(queue_depth: int = 8, workers: int = 2) -> dict:
    """Audit-daemon throughput: submit→result latency and jobs/sec.

    Spins an in-process :class:`~repro.service.server.AuditService` on a
    temp workdir, fills the queue to ``queue_depth`` toy jobs and drains
    it.  Latency is each job's journal timestamps (submit → terminal);
    throughput is jobs over the whole batch's wall time — the figure the
    backpressure limit trades against.
    """
    import shutil
    import tempfile

    from repro.service import AuditJob, AuditService, ServiceConfig

    workdir = tempfile.mkdtemp(prefix="bench-service-")
    service = AuditService(
        ServiceConfig(
            workdir,
            queue_limit=queue_depth,
            workers=workers,
            port=None,
            poll_seconds=0.005,
        )
    ).start()
    try:
        start = time.perf_counter()
        job_ids = []
        for i in range(queue_depth):
            job_id = f"bench-{i}"
            service.submit(
                AuditJob(id=job_id, scenario="figure1", algorithm="balanced", seed=i)
            )
            job_ids.append(job_id)
        assert service.drain(timeout=300), "service bench never drained"
        wall = time.perf_counter() - start
        latencies = []
        for job_id in job_ids:
            record = service.record(job_id)
            assert record.state.value == "DONE", f"{job_id} ended {record.state}"
            latencies.append(record.updated_at - record.submitted_at)
    finally:
        service.stop()
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "queue_depth": queue_depth,
        "workers": workers,
        "jobs": len(job_ids),
        "wall_seconds": wall,
        "jobs_per_second": len(job_ids) / wall,
        "latency_seconds": {
            "median": statistics.median(latencies),
            "min": min(latencies),
            "max": max(latencies),
        },
    }


def run_service_load(quick: bool) -> dict:
    """The SLO-curve sweep: the **real daemon subprocess** under seeded
    offered load at several rates and arrival mixes.

    Delegates to :mod:`benchmarks.load_gen` (which forks ``repro.cli
    serve`` per load point and submits over HTTP through the asyncio
    front end) and returns its ``service_load`` section — latency
    percentiles and sustained jobs/sec vs offered load.
    """
    spec = importlib.util.spec_from_file_location(
        "load_gen", Path(__file__).resolve().parent / "load_gen.py"
    )
    load_gen = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(load_gen)
    if quick:
        return load_gen.run_load_suite(
            mixes=LOAD_MIXES, rates=LOAD_RATES_QUICK, duration=3.0
        )
    return load_gen.run_load_suite(mixes=LOAD_MIXES, rates=LOAD_RATES)


def run_mitigation(quick: bool) -> dict:
    """The repair-strategy sweep: one audited ranking per scenario, every
    registered strategy applied to its worst partitioning.

    Each case runs the repair **twice** and asserts the repaired-ranking
    digests match — the bench doubles as a bit-stability check at
    population sizes the golden tables never reach.
    """
    from repro.repair import repair_ranking

    cases = []
    for label, scenario in _suite(quick):
        population = scenario.population
        scores = scenario.functions[BENCH_FUNCTION](population)
        print(f"[mitigation] {label} balanced audit ...", flush=True)
        audit = get_algorithm("balanced").run(
            population, scores, hist_spec=scenario.hist_spec, rng=0
        )
        for strategy, options in MITIGATION_STRATEGIES:
            variant = options.get("strategy_options", {}).get("variant")
            name = f"{strategy}/{variant}" if variant else strategy
            print(f"[mitigation] {label} {name} ...", flush=True)
            first, second = (
                repair_ranking(
                    population,
                    scores,
                    audit.partitioning,
                    strategy,
                    hist_spec=scenario.hist_spec,
                    **options,
                )
                for _ in range(2)
            )
            assert first.ranking_digest() == second.ranking_digest(), (
                f"{name} repair is not bit-stable on {label}"
            )
            summary = first.as_dict()
            # Per-group exposure maps scale with the partitioning (1.7k
            # groups at table2-7300) — too bulky for a committed payload.
            for key in ("exposure_before", "exposure_after", "exposure_delta"):
                summary.pop(key)
            cases.append(
                {
                    "scenario": label,
                    "function": BENCH_FUNCTION,
                    "algorithm": "balanced",
                    "n_partitions": audit.partitioning.k,
                    "audit_unfairness": audit.unfairness,
                    **summary,
                }
            )
            print(
                "    {:.4f} -> {:.4f}  ndcg@{} {:.4f}  ({:.3f}s)".format(
                    first.unfairness_before,
                    first.unfairness_after,
                    first.k,
                    first.ndcg_at_k,
                    first.runtime_seconds,
                ),
                flush=True,
            )
    return {"function": BENCH_FUNCTION, "algorithm": "balanced", "cases": cases}


def mitigation_failures(mitigation: dict) -> list[str]:
    """Gate messages for ``--assert-mitigation-improvement`` (empty = pass).

    Every case must strictly decrease unfairness; the re-ranking
    strategies (which permute rather than rewrite scores) must also keep
    NDCG@k at or above :data:`MITIGATION_NDCG_FLOOR`.
    """
    failures = []
    for case in mitigation["cases"]:
        variant = case["params"].get("variant")
        name = case["strategy"] + (f"/{variant}" if variant else "")
        where = f"{name} on {case['scenario']}"
        if not case["unfairness_after"] < case["unfairness_before"]:
            failures.append(
                f"{where}: unfairness did not decrease "
                f"({case['unfairness_before']:.4f} -> {case['unfairness_after']:.4f})"
            )
        if case["strategy"] != "quantile" and case["ndcg_at_k"] < MITIGATION_NDCG_FLOOR:
            failures.append(
                f"{where}: ndcg@{case['k']} {case['ndcg_at_k']:.4f} is below "
                f"the {MITIGATION_NDCG_FLOOR} floor"
            )
    return failures


def validate_service_load(section: dict) -> None:
    """Raise ``ValueError`` unless ``section`` is a well-formed
    ``service_load`` bench section (see ``benchmarks/load_gen.py``)."""

    def fail(message: str) -> None:
        raise ValueError(f"invalid service_load section: {message}")

    if not isinstance(section, dict):
        fail("must be a dict")
    daemon = section.get("daemon")
    if not isinstance(daemon, dict):
        fail("daemon must be a dict")
    for key in ("queue_workers", "batch_max", "bulk_size", "connections"):
        value = daemon.get(key)
        if not isinstance(value, int) or value < 1:
            fail(f"daemon.{key} must be a positive int")
    mixes = section.get("mixes")
    if not isinstance(mixes, list) or not mixes:
        fail("mixes must be a non-empty list")
    for m, entry in enumerate(mixes):
        if not isinstance(entry, dict):
            fail(f"mixes[{m}] must be a dict")
        if entry.get("mix") not in LOAD_MIXES:
            fail(f"mixes[{m}].mix {entry.get('mix')!r} not in {LOAD_MIXES}")
        points = entry.get("points")
        if not isinstance(points, list) or not points:
            fail(f"mixes[{m}].points must be a non-empty list")
        for p, point in enumerate(points):
            where = f"mixes[{m}].points[{p}]"
            for key, kind in (
                ("offered_jobs_per_second", float),
                ("duration_seconds", float),
                ("submitted", int),
                ("accepted", int),
                ("rejected", int),
                ("completed", int),
                ("jobs_per_second", float),
                ("latency_seconds", dict),
            ):
                if not isinstance(point.get(key), kind):
                    fail(f"{where}.{key} must be {kind.__name__}")
            if point["offered_jobs_per_second"] <= 0:
                fail(f"{where}.offered_jobs_per_second must be positive")
            if point["duration_seconds"] <= 0:
                fail(f"{where}.duration_seconds must be positive")
            if point["submitted"] < 1 or point["jobs_per_second"] <= 0:
                fail(f"{where} throughput fields must be positive")
            if not (
                0 <= point["completed"] <= point["accepted"] <= point["submitted"]
            ):
                fail(f"{where}: completed <= accepted <= submitted violated")
            latency = point["latency_seconds"]
            for key in ("p50", "p99", "max"):
                value = latency.get(key)
                if not isinstance(value, float) or value < 0:
                    fail(f"{where}.latency_seconds.{key} must be a "
                         "non-negative float")
            if not latency["p50"] <= latency["p99"] <= latency["max"]:
                fail(f"{where}: latency percentiles must be ordered "
                     "p50 <= p99 <= max")


#: Counters the ``"chaos"`` bench section must carry (see
#: ``benchmarks/load_gen.py::run_chaos_point``).
CHAOS_COUNTERS = (
    "chaos.faults_injected",
    "service.journal_write_failures",
    "service.degraded_entered",
    "service.degraded_recoveries",
    "service.watchdog_requeues",
)


def run_chaos(quick: bool) -> dict:
    """The chaos point: the real daemon subprocess under ``--chaos``
    seeded fault injection, measured externally (availability, degraded-
    episode recovery time, sustained jobs/sec at the injected fault rate).

    Delegates to :mod:`benchmarks.load_gen` and returns its ``"chaos"``
    section.  The point itself enforces the hard invariants (ends
    HEALTHY, no acknowledged job lost) by raising.
    """
    spec = importlib.util.spec_from_file_location(
        "load_gen", Path(__file__).resolve().parent / "load_gen.py"
    )
    load_gen = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(load_gen)
    duration = load_gen.CHAOS_DURATION_SMOKE if quick else load_gen.CHAOS_DURATION
    return load_gen.run_chaos_point(duration=duration)


def validate_chaos(section: dict) -> None:
    """Raise ``ValueError`` unless ``section`` is a well-formed ``chaos``
    bench section (see ``benchmarks/load_gen.py``)."""

    def fail(message: str) -> None:
        raise ValueError(f"invalid chaos section: {message}")

    if not isinstance(section, dict):
        fail("must be a dict")
    if not isinstance(section.get("spec"), str) or not section["spec"]:
        fail("spec must be a non-empty string")
    if not isinstance(section.get("seed"), int):
        fail("seed must be an int")
    for key in ("offered_jobs_per_second", "duration_seconds", "jobs_per_second"):
        value = section.get(key)
        if not isinstance(value, float) or value <= 0:
            fail(f"{key} must be a positive float")
    for key in (
        "submitted",
        "attempts",
        "accepted",
        "rejected_degraded",
        "rejected_other",
        "connection_errors",
        "completed",
        "health_polls",
        "degraded_episodes",
    ):
        value = section.get(key)
        if not isinstance(value, int) or value < 0:
            fail(f"{key} must be a non-negative int")
    if section["submitted"] < 1:
        fail("submitted must be positive")
    if not section["completed"] <= section["accepted"] <= section["attempts"]:
        fail("completed <= accepted <= attempts violated")
    availability = section.get("availability")
    if not isinstance(availability, float) or not 0.0 <= availability <= 1.0:
        fail("availability must be a float in [0, 1]")
    recovery = section.get("recovery_seconds")
    if not isinstance(recovery, dict):
        fail("recovery_seconds must be a dict")
    for key in ("p50", "p99", "max"):
        value = recovery.get(key)
        if not isinstance(value, float) or value < 0:
            fail(f"recovery_seconds.{key} must be a non-negative float")
    if not recovery["p50"] <= recovery["p99"] <= recovery["max"]:
        fail("recovery percentiles must be ordered p50 <= p99 <= max")
    if section["degraded_episodes"] > 0 and recovery["max"] <= 0:
        fail("degraded episodes were observed but recovery max is zero")
    if section.get("final_state") != "HEALTHY":
        fail(f"final_state must be 'HEALTHY', got {section.get('final_state')!r}")
    counters = section.get("counters")
    if not isinstance(counters, dict):
        fail("counters must be a dict")
    for name in CHAOS_COUNTERS:
        value = counters.get(name)
        if not isinstance(value, (int, float)) or value < 0:
            fail(f"counters[{name!r}] must be a non-negative number")


def validate_bench_payload(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a well-formed v1 bench."""

    def fail(message: str) -> None:
        raise ValueError(f"invalid bench payload: {message}")

    if payload.get("schema") != BENCH_SCHEMA:
        fail(f"schema must be {BENCH_SCHEMA!r}, got {payload.get('schema')!r}")
    for key in ("generated_at", "mode", "host", "cases", "overhead"):
        if key not in payload:
            fail(f"missing key {key!r}")
    host = payload["host"]
    if not isinstance(host, dict):
        fail("host must be a dict")
    for key in ("python", "platform"):
        if not isinstance(host.get(key), str) or not host[key]:
            fail(f"host.{key} must be a non-empty string")
    # cpu_count is validated when present; payloads committed before it
    # existed stay valid.
    if "cpu_count" in host:
        if not isinstance(host["cpu_count"], int) or host["cpu_count"] < 1:
            fail("host.cpu_count must be a positive int")
    if not isinstance(payload["cases"], list) or not payload["cases"]:
        fail("cases must be a non-empty list")
    for index, case in enumerate(payload["cases"]):
        for key, kind in (
            ("scenario", str),
            ("algorithm", str),
            ("function", str),
            ("backend", str),
            ("wall_seconds", float),
            ("unfairness", float),
            ("n_partitions", int),
            ("engine", dict),
            ("breakdown", dict),
            ("metrics", dict),
        ):
            if not isinstance(case.get(key), kind):
                fail(f"cases[{index}].{key} must be {kind.__name__}")
        if case["backend"] not in BACKENDS:
            fail(f"cases[{index}].backend {case['backend']!r} not in {BACKENDS}")
        if case["wall_seconds"] < 0:
            fail(f"cases[{index}].wall_seconds is negative")
        for name in _ENGINE_COUNTERS:
            if not isinstance(case["engine"].get(name), int):
                fail(f"cases[{index}].engine.{name} must be an int")
    overhead = payload["overhead"]
    # "noise" (the intra-arm jitter floor) is validated when present;
    # payloads committed before it existed stay valid.
    if "noise" in overhead and not isinstance(overhead["noise"], float):
        fail("overhead.noise must be a float")
    for key in (
        "baseline_seconds",
        "noop_seconds",
        "relative",
        "noop_span_ns",
        "estimated_fraction",
    ):
        if not isinstance(overhead.get(key), float):
            fail(f"overhead.{key} must be a float")
    if overhead["baseline_seconds"] <= 0 or overhead["noop_seconds"] <= 0:
        fail("overhead timings must be positive")
    if "service" in payload:
        service = payload["service"]
        if not isinstance(service, dict):
            fail("service must be a dict")
        for key, kind in (
            ("queue_depth", int),
            ("workers", int),
            ("jobs", int),
            ("wall_seconds", float),
            ("jobs_per_second", float),
            ("latency_seconds", dict),
        ):
            if not isinstance(service.get(key), kind):
                fail(f"service.{key} must be {kind.__name__}")
        if service["queue_depth"] < 1 or service["jobs"] < 1:
            fail("service sizes must be positive")
        if service["wall_seconds"] <= 0 or service["jobs_per_second"] <= 0:
            fail("service timings must be positive")
        for key in ("median", "min", "max"):
            value = service["latency_seconds"].get(key)
            if not isinstance(value, float) or value < 0:
                fail(f"service.latency_seconds.{key} must be a non-negative float")
    if "service_load" in payload:
        try:
            validate_service_load(payload["service_load"])
        except ValueError as exc:
            fail(str(exc))
    if "chaos" in payload:
        try:
            validate_chaos(payload["chaos"])
        except ValueError as exc:
            fail(str(exc))
    if "streaming" in payload:
        streaming = payload["streaming"]
        if not isinstance(streaming, dict):
            fail("streaming must be a dict")
        for key, kind in (
            ("function", str),
            ("algorithm", str),
            ("delta_batch", int),
            ("repeats", int),
        ):
            if not isinstance(streaming.get(key), kind):
                fail(f"streaming.{key} must be {kind.__name__}")
        if streaming["delta_batch"] < 1 or streaming["repeats"] < 1:
            fail("streaming sizes must be positive")
        if not isinstance(streaming.get("cases"), list) or not streaming["cases"]:
            fail("streaming.cases must be a non-empty list")
        for index, case in enumerate(streaming["cases"]):
            for key, kind in (
                ("population", int),
                ("n_atoms", int),
                ("delta_batch", int),
                ("stale_deltas", int),
                ("first_audit_seconds", float),
                ("mutations_per_second", float),
                ("speedup", float),
                ("audit_speedup", float),
                ("paths", dict),
            ):
                if not isinstance(case.get(key), kind):
                    fail(f"streaming.cases[{index}].{key} must be {kind.__name__}")
            if case["population"] <= 0 or case["n_atoms"] <= 0:
                fail(f"streaming.cases[{index}] sizes must be positive")
            if case["mutations_per_second"] <= 0 or case["speedup"] <= 0:
                fail(f"streaming.cases[{index}] rates must be positive")
            for path in STREAMING_PATHS:
                timing = case["paths"].get(path)
                if not isinstance(timing, dict):
                    fail(f"streaming.cases[{index}].paths.{path} must be a dict")
                for key in ("median", "min"):
                    if not isinstance(timing.get(key), float) or timing[key] <= 0:
                        fail(
                            f"streaming.cases[{index}].paths.{path}.{key} "
                            "must be a positive float"
                        )
                if not isinstance(timing.get("repeats"), list) or not timing["repeats"]:
                    fail(
                        f"streaming.cases[{index}].paths.{path}.repeats "
                        "must be a non-empty list"
                    )
    if "kernels" in payload:
        kernels = payload["kernels"]
        if not isinstance(kernels, dict):
            fail("kernels must be a dict")
        for key, kind in (
            ("function", str),
            ("metric", str),
            ("stack_cap", int),
            ("repeats", int),
            ("status", dict),
        ):
            if not isinstance(kernels.get(key), kind):
                fail(f"kernels.{key} must be {kind.__name__}")
        if not isinstance(kernels.get("cases"), list) or not kernels["cases"]:
            fail("kernels.cases must be a non-empty list")
        for index, case in enumerate(kernels["cases"]):
            for key, kind in (
                ("population", int),
                ("n_atoms", int),
                ("stack_rows", int),
                ("backends", dict),
                ("cache", dict),
            ):
                if not isinstance(case.get(key), kind):
                    fail(f"kernels.cases[{index}].{key} must be {kind.__name__}")
            if case["population"] <= 0 or case["stack_rows"] <= 0:
                fail(f"kernels.cases[{index}] sizes must be positive")
            for backend in ("numpy", "scalar"):
                if backend not in case["backends"]:
                    fail(f"kernels.cases[{index}].backends missing {backend!r}")
            for backend, timing in case["backends"].items():
                for key in ("median", "min"):
                    if not isinstance(timing.get(key), float) or timing[key] <= 0:
                        fail(
                            f"kernels.cases[{index}].backends.{backend}.{key} "
                            "must be a positive float"
                        )
                if not isinstance(timing.get("repeats"), list) or not timing["repeats"]:
                    fail(
                        f"kernels.cases[{index}].backends.{backend}.repeats "
                        "must be a non-empty list"
                    )
            cache = case["cache"]
            for side in ("cold", "warm"):
                timing = cache.get(side)
                if not isinstance(timing, dict):
                    fail(f"kernels.cases[{index}].cache.{side} must be a dict")
                for key in ("median", "min"):
                    if not isinstance(timing.get(key), float) or timing[key] <= 0:
                        fail(
                            f"kernels.cases[{index}].cache.{side}.{key} "
                            "must be a positive float"
                        )
            for key, kind in (("speedup", float), ("hits", int), ("entries", int)):
                if not isinstance(cache.get(key), kind):
                    fail(f"kernels.cases[{index}].cache.{key} must be {kind.__name__}")
            if cache["speedup"] <= 0 or cache["hits"] < 1:
                fail(f"kernels.cases[{index}].cache rates must be positive")
    if "mitigation" in payload:
        mitigation = payload["mitigation"]
        if not isinstance(mitigation, dict):
            fail("mitigation must be a dict")
        for key in ("function", "algorithm"):
            if not isinstance(mitigation.get(key), str):
                fail(f"mitigation.{key} must be a str")
        if not isinstance(mitigation.get("cases"), list) or not mitigation["cases"]:
            fail("mitigation.cases must be a non-empty list")
        for index, case in enumerate(mitigation["cases"]):
            for key, kind in (
                ("scenario", str),
                ("function", str),
                ("algorithm", str),
                ("strategy", str),
                ("params", dict),
                ("n_partitions", int),
                ("k", int),
                ("audit_unfairness", float),
                ("unfairness_before", float),
                ("unfairness_after", float),
                ("ndcg_at_k", float),
                ("retained_score_mass", float),
                ("runtime_seconds", float),
                ("ranking_digest", int),
            ):
                if not isinstance(case.get(key), kind):
                    fail(f"mitigation.cases[{index}].{key} must be {kind.__name__}")
            if case["k"] < 1 or case["n_partitions"] < 1:
                fail(f"mitigation.cases[{index}] sizes must be positive")
            for key in ("unfairness_before", "unfairness_after"):
                if case[key] < 0:
                    fail(f"mitigation.cases[{index}].{key} is negative")
            if not 0.0 <= case["ndcg_at_k"] <= 1.0 + 1e-9:
                fail(f"mitigation.cases[{index}].ndcg_at_k must be in [0, 1]")
            if case["runtime_seconds"] < 0:
                fail(f"mitigation.cases[{index}].runtime_seconds is negative")
    if "scaling" in payload:
        scaling = payload["scaling"]
        if not isinstance(scaling, dict):
            fail("scaling must be a dict")
        if not isinstance(scaling.get("function"), str):
            fail("scaling.function must be a str")
        if not isinstance(scaling.get("repeats"), int) or scaling["repeats"] < 1:
            fail("scaling.repeats must be a positive int")
        if not isinstance(scaling.get("cases"), list) or not scaling["cases"]:
            fail("scaling.cases must be a non-empty list")
        for index, case in enumerate(scaling["cases"]):
            for key, kind in (
                ("population", int),
                ("n_atoms", int),
                ("atom_table_build_seconds", float),
                ("paths", dict),
            ):
                if not isinstance(case.get(key), kind):
                    fail(f"scaling.cases[{index}].{key} must be {kind.__name__}")
            if case["population"] <= 0 or case["n_atoms"] <= 0:
                fail(f"scaling.cases[{index}] sizes must be positive")
            for path in SCALING_PATHS:
                timing = case["paths"].get(path)
                if not isinstance(timing, dict):
                    fail(f"scaling.cases[{index}].paths.{path} must be a dict")
                for key in ("median", "min"):
                    if not isinstance(timing.get(key), float) or timing[key] <= 0:
                        fail(
                            f"scaling.cases[{index}].paths.{path}.{key} "
                            "must be a positive float"
                        )
                if not isinstance(timing.get("repeats"), list) or not timing["repeats"]:
                    fail(
                        f"scaling.cases[{index}].paths.{path}.repeats "
                        "must be a non-empty list"
                    )


def run_suite(
    quick: bool,
    repeats: int,
    scaling: bool = False,
    streaming: bool = False,
    mitigation: bool = False,
    kernels: bool = False,
    service_load: bool = False,
    chaos: bool = False,
) -> dict:
    """Execute the fixed suite and return the (validated) payload."""
    cases = []
    overhead = None
    for label, scenario in _suite(quick):
        scores = scenario.functions[BENCH_FUNCTION](scenario.population)
        for algorithm in PAPER_ALGORITHMS:
            for backend in BACKENDS:
                print(f"[{label}] {algorithm} / {backend} ...", flush=True)
                cases.append(_run_case(scenario, scores, algorithm, backend))
                print(f"    {cases[-1]['wall_seconds']:.3f}s", flush=True)
        if overhead is None:
            # The fused kernels cut the A/B audit to milliseconds, so the
            # measurement needs more interleaved repeats than the section
            # timings to keep min-of-N below the 2% noise budget — they
            # are cheap for exactly the same reason.
            overhead_repeats = max(repeats, 15)
            print(
                f"[{label}] no-op tracer overhead ({overhead_repeats} repeats) ...",
                flush=True,
            )
            overhead = _measure_overhead(scenario, scores, overhead_repeats)
    print("[service] audit daemon throughput (queue depth 8) ...", flush=True)
    service = run_service_bench()
    payload = {
        "schema": BENCH_SCHEMA,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": "quick" if quick else "full",
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "cases": cases,
        "overhead": overhead,
        "service": service,
    }
    if scaling:
        payload["scaling"] = run_scaling(quick, repeats)
    if streaming:
        payload["streaming"] = run_streaming(quick, repeats)
    if mitigation:
        payload["mitigation"] = run_mitigation(quick)
    if kernels:
        payload["kernels"] = run_kernels(quick, repeats)
    if service_load:
        payload["service_load"] = run_service_load(quick)
    if chaos:
        print("[chaos] daemon under seeded fault injection ...", flush=True)
        payload["chaos"] = run_chaos(quick)
    validate_bench_payload(payload)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small table1 population only (CI smoke mode)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="overhead-measurement repeats (default: 3 quick, 5 full)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default: benchmarks/results/BENCH_<timestamp>.json)",
    )
    parser.add_argument(
        "--scaling",
        action="store_true",
        help="also run the atom-vs-member-vs-full scaling sweep "
        f"({SCALING_POPULATIONS_QUICK} quick / {SCALING_POPULATIONS} full workers)",
    )
    parser.add_argument(
        "--assert-atom-speedup",
        action="store_true",
        help="exit 1 unless the atom path beats the member path at the "
        "largest scaling population (implies --scaling)",
    )
    parser.add_argument(
        "--streaming",
        action="store_true",
        help="also run the streaming-vs-rebuild mutable-population sweep "
        f"({SCALING_POPULATIONS_QUICK} quick / {SCALING_POPULATIONS} full workers)",
    )
    parser.add_argument(
        "--assert-streaming-speedup",
        action="store_true",
        help="exit 1 unless the streaming re-audit beats the full rebuild "
        "at the largest population — by >=10x in full mode, >1x in --quick "
        "(implies --streaming)",
    )
    parser.add_argument(
        "--kernels",
        action="store_true",
        help="also run the compiled-kernel + cross-job-cache sweep "
        f"({SCALING_POPULATIONS_QUICK} quick / {SCALING_POPULATIONS} full workers)",
    )
    parser.add_argument(
        "--assert-kernel-speedup",
        action="store_true",
        help="exit 1 unless the compiled numpy kernel beats the scalar loop "
        "AND warm-cache jobs beat cold ones at the largest population — by "
        f">={KERNEL_CACHE_SPEEDUP_FULL}x in full mode, "
        f">={KERNEL_CACHE_SPEEDUP_QUICK}x in --quick (implies --kernels)",
    )
    parser.add_argument(
        "--service-load",
        action="store_true",
        help="also run the daemon SLO-curve load sweep (benchmarks/load_gen.py: "
        f"offered rates {LOAD_RATES_QUICK} quick / {LOAD_RATES} full jobs/s "
        f"across the {LOAD_MIXES} arrival mixes, real serve subprocess)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="also run the chaos point (benchmarks/load_gen.py --chaos): the "
        "real serve subprocess under seeded fault injection, recording "
        "availability, recovery-time percentiles and jobs/s at the injected "
        "fault rate",
    )
    parser.add_argument(
        "--mitigation",
        action="store_true",
        help="also run the repair-strategy sweep (every registered strategy "
        "applied to each scenario's worst partitioning)",
    )
    parser.add_argument(
        "--assert-mitigation-improvement",
        action="store_true",
        help="exit 1 unless every repair strictly decreases unfairness and "
        f"the re-ranking strategies keep NDCG@k >= {MITIGATION_NDCG_FLOOR} "
        "(implies --mitigation)",
    )
    args = parser.parse_args(argv)

    repeats = args.repeats or (3 if args.quick else 5)
    scaling = args.scaling or args.assert_atom_speedup
    streaming = args.streaming or args.assert_streaming_speedup
    mitigation = args.mitigation or args.assert_mitigation_improvement
    kernels = args.kernels or args.assert_kernel_speedup
    payload = run_suite(
        args.quick,
        repeats,
        scaling=scaling,
        streaming=streaming,
        mitigation=mitigation,
        kernels=kernels,
        service_load=args.service_load,
        chaos=args.chaos,
    )

    if args.out:
        out_path = Path(args.out)
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
        out_path = RESULTS_DIR / f"BENCH_{stamp}.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")

    overhead = payload["overhead"]
    print(f"\nwrote {len(payload['cases'])} cases to {out_path}")
    service = payload["service"]
    print(
        f"service: {service['jobs_per_second']:.1f} jobs/s at queue depth "
        f"{service['queue_depth']} (median submit→result latency "
        f"{service['latency_seconds']['median'] * 1000:.1f}ms)"
    )
    print(
        f"no-op tracer: A/B delta {overhead['relative']:.2%}, "
        f"estimated instrumentation cost {overhead['estimated_fraction']:.3%} "
        f"({overhead['spans_per_audit']} span sites x "
        f"{overhead['noop_span_ns']:.0f}ns)"
    )
    if "service_load" in payload:
        best = max(
            (
                point
                for entry in payload["service_load"]["mixes"]
                for point in entry["points"]
            ),
            key=lambda point: point["jobs_per_second"],
        )
        print(
            f"service_load: peak {best['jobs_per_second']:.0f} jobs/s sustained "
            f"through the HTTP front end "
            f"(at {best['offered_jobs_per_second']:g} jobs/s offered, "
            f"p99 {best['latency_seconds']['p99'] * 1000:.0f}ms)"
        )
    if "chaos" in payload:
        chaos_section = payload["chaos"]
        print(
            "chaos: {:.1%} available under {} ({} degraded episodes, "
            "recovery p99 {:.0f}ms, {:.0f} jobs/s, ends {})".format(
                chaos_section["availability"],
                chaos_section["spec"],
                chaos_section["degraded_episodes"],
                chaos_section["recovery_seconds"]["p99"] * 1000,
                chaos_section["jobs_per_second"],
                chaos_section["final_state"],
            )
        )
    if "scaling" in payload:
        population, speedup = scaling_speedup(payload["scaling"])
        print(
            f"scaling: atom path is {speedup:.1f}x the member path "
            f"at {population} workers"
        )
        if args.assert_atom_speedup and speedup <= 1.0:
            print(
                f"FAIL: atom path did not beat the member path at {population} "
                f"workers (speedup {speedup:.2f}x)",
                file=sys.stderr,
            )
            return 1
    if "streaming" in payload:
        population, speedup = streaming_speedup(payload["streaming"])
        print(
            f"streaming: delta re-audit is {speedup:.1f}x the full rebuild "
            f"at {population} workers"
        )
        if args.assert_streaming_speedup:
            required = 1.0 if args.quick else 10.0
            if speedup < required:
                print(
                    f"FAIL: streaming re-audit speedup {speedup:.2f}x at "
                    f"{population} workers is below the {required:.0f}x bar",
                    file=sys.stderr,
                )
                return 1
    if "kernels" in payload:
        population, kernel_ratio, cache_ratio = kernel_speedups(payload["kernels"])
        print(
            f"kernels: compiled numpy kernel is {kernel_ratio:.1f}x the scalar "
            f"loop, warm-cache jobs are {cache_ratio:.1f}x cold ones "
            f"at {population} workers"
        )
        if args.assert_kernel_speedup:
            required = (
                KERNEL_CACHE_SPEEDUP_QUICK if args.quick else KERNEL_CACHE_SPEEDUP_FULL
            )
            if kernel_ratio <= 1.0:
                print(
                    f"FAIL: compiled kernel did not beat the scalar loop at "
                    f"{population} workers (speedup {kernel_ratio:.2f}x)",
                    file=sys.stderr,
                )
                return 1
            if cache_ratio < required:
                print(
                    f"FAIL: warm-cache speedup {cache_ratio:.2f}x at {population} "
                    f"workers is below the {required}x bar",
                    file=sys.stderr,
                )
                return 1
    if "mitigation" in payload:
        worst = max(
            payload["mitigation"]["cases"],
            key=lambda case: case["unfairness_before"] - case["unfairness_after"],
        )
        print(
            "mitigation: best repair {} on {} ({:.4f} -> {:.4f}, "
            "ndcg@{} {:.4f}) across {} cases".format(
                worst["strategy"],
                worst["scenario"],
                worst["unfairness_before"],
                worst["unfairness_after"],
                worst["k"],
                worst["ndcg_at_k"],
                len(payload["mitigation"]["cases"]),
            )
        )
        if args.assert_mitigation_improvement:
            failures = mitigation_failures(payload["mitigation"])
            for message in failures:
                print(f"FAIL: {message}", file=sys.stderr)
            if failures:
                return 1
    if overhead["relative"] >= 0.02 and overhead["relative"] >= overhead.get("noise", 0.0):
        # Only a delta that clears both the budget and the run's own
        # intra-arm jitter is a measurable regression; anything below the
        # noise floor would flake on loaded machines.
        print("WARNING: no-op overhead A/B delta exceeds the 2% budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
