"""Ablation A3 — is the measured unfairness signal or sampling noise?

The paper observes that on random data every algorithm reports average EMD
around 0.15–0.33 and conjectures it reflects "the random values of all
attributes".  This benchmark quantifies that conjecture with permutation
tests (see :mod:`repro.analysis.significance`):

* the planted biases (f6..f9) must be significant far beyond their noise
  floor;
* the "unfairness" of a pre-declared gender grouping under the random f1
  must sit inside its own permutation null — pure noise.
"""

from __future__ import annotations

import pytest

from conftest import record_result
from repro.analysis.significance import permutation_test
from repro.core.algorithms import get_algorithm
from repro.marketplace.biased import paper_biased_functions
from repro.marketplace.scoring import paper_functions
from repro.simulation.generator import generate_paper_population

N_PERMUTATIONS = 199


@pytest.fixture(scope="module")
def population():
    return generate_paper_population(2000, seed=42)


def test_planted_biases_are_significant(benchmark, population) -> None:
    functions = paper_biased_functions()

    def run_all():
        rows = []
        for name in ("f6", "f7", "f8", "f9"):
            scores = functions[name](population)
            result = get_algorithm("balanced").run(population, scores)
            test = permutation_test(
                scores, result.partitioning, n_permutations=N_PERMUTATIONS, rng=0
            )
            rows.append((name, result.partitioning.k, test))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        "permutation significance of the planted biases (balanced, 2000 workers)",
        f"{'fn':>4}  {'k':>5}  {'observed':>9}  {'noise floor':>12}  {'p-value':>8}",
    ]
    for name, k, test in rows:
        lines.append(
            f"{name:>4}  {k:>5d}  {test.observed:>9.3f}"
            f"  {test.null_mean:>6.3f}±{test.null_std:.3f}  {test.p_value:>8.4f}"
        )
    record_result("ablation_significance_biased", "\n".join(lines))

    for name, __, test in rows:
        assert test.significant, name
        assert test.p_value == pytest.approx(1 / (N_PERMUTATIONS + 1)), name
    # f6-f8 plant coarse biases that tower over the noise floor; f9's milder
    # bands make balanced split deep, so its excess is small yet significant.
    for name, __, test in rows[:3]:
        assert test.excess > 0.1, name


def test_random_function_grouping_is_noise(benchmark, population) -> None:
    # A *pre-declared* grouping (gender), not a searched one: searching for
    # the worst attribute maximises over the null and would need a
    # search-adjusted test (see the permutation_test docstring).
    from repro.core.partition import Partition, Partitioning
    from repro.core.splitting import split_partition

    scores = paper_functions()["f1"](population)
    by_gender = Partitioning(
        split_partition(population, Partition(population.all_indices()), "gender"),
        population.size,
    )

    test = benchmark.pedantic(
        lambda: permutation_test(
            scores, by_gender, n_permutations=N_PERMUTATIONS, rng=1
        ),
        rounds=1,
        iterations=1,
    )
    record_result(
        "ablation_significance_random",
        "permutation significance of a gender grouping under the random f1\n"
        f"  {test}\n"
        "  -> consistent with sampling noise, as the paper conjectures for "
        "Tables 1-2",
    )
    assert test.p_value > 0.01
    assert abs(test.excess) < 5 * max(test.null_std, 1e-6) + 0.02
