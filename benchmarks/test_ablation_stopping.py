"""Ablation A1 — the ``unbalanced`` stopping condition.

The paper's Algorithm 2 compares ``averageEMD(current, siblings, f)`` with
``averageEMD(children, siblings, f)`` but does not define the two-argument
form.  We implement two readings (DESIGN.md §2.4):

* **union** (our default): average pairwise distance over ``X ∪ S`` — an
  exact local what-if on the overall objective;
* **cross-only**: average over X-vs-S pairs only — ignores how the new
  children relate to *each other*, which is the plausible mechanism behind
  the paper's observation that unbalanced "ended up splitting the workers
  further than it should" on f6/f7.

This ablation runs both variants on the biased functions and records the
objective and the partitioning size each reaches.
"""

from __future__ import annotations

import pytest

from conftest import record_result
from repro.core.algorithms.unbalanced import UnbalancedAlgorithm
from repro.simulation.scenarios import table3_scenario


@pytest.fixture(scope="module")
def scenario():
    return table3_scenario()


def test_stopping_condition_ablation(benchmark, scenario) -> None:
    population = scenario.population
    union = UnbalancedAlgorithm(cross_only=False)
    cross = UnbalancedAlgorithm(cross_only=True)

    def run_all():
        rows = []
        for name, function in scenario.functions.items():
            scores = function(population)
            union_result = union.run(population, scores, hist_spec=scenario.hist_spec)
            cross_result = cross.run(population, scores, hist_spec=scenario.hist_spec)
            rows.append((name, union_result, cross_result))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "unbalanced stopping-condition ablation (7300 workers, biased functions)",
        f"{'fn':>4}  {'union EMD':>10}  {'union k':>8}  {'cross EMD':>10}  {'cross k':>8}",
    ]
    for name, union_result, cross_result in rows:
        lines.append(
            f"{name:>4}  {union_result.unfairness:>10.3f}  {union_result.partitioning.k:>8d}"
            f"  {cross_result.unfairness:>10.3f}  {cross_result.partitioning.k:>8d}"
        )
    record_result("ablation_stopping", "\n".join(lines))

    by_name = {name: (u, c) for name, u, c in rows}
    # Both variants must recover the gender bias direction on f6...
    union_f6, cross_f6 = by_name["f6"]
    assert "gender" in union_f6.partitioning.attributes_used()
    assert "gender" in cross_f6.partitioning.attributes_used()
    # ...and the union reading must reach the pinned 0.8 gender-split value.
    assert union_f6.unfairness == pytest.approx(0.8, abs=0.02)
    # The union reading never produces a worse objective than cross-only on
    # these planted-bias functions (it optimises the actual objective).
    for name in ("f6", "f7", "f8"):
        union_result, cross_result = by_name[name]
        assert union_result.unfairness >= cross_result.unfairness - 1e-6, name
