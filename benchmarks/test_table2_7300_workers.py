"""Experiment E3 — Table 2: 7300 workers (active-AMT estimate), f1..f5.

Same layout as Table 1 at the paper's large scale.  Asserted shapes:

* f4/f5 still exceed the mixtures for every algorithm;
* the larger dataset exhibits *lower* average EMD than the 500-worker one
  (bigger cells, less sampling noise) and costs more wall-clock time;
* all algorithms behave similarly and end at/near the full partitioning
  ("We conjecture that it is due to the random values of all attributes").
"""

from __future__ import annotations

import pytest

from conftest import record_result
from repro.core.algorithms import PAPER_ALGORITHMS, get_algorithm
from repro.reporting.paper_reference import TABLE2_EMD, TABLE2_RUNTIME
from repro.reporting.tables import format_comparison_table, format_table
from repro.simulation.runner import ExperimentResult, run_scenario
from repro.simulation.scenarios import table1_scenario, table2_scenario

MIXTURES = ("f1", "f2", "f3")
SINGLE_ATTRIBUTE = ("f4", "f5")


@pytest.fixture(scope="module")
def table2() -> ExperimentResult:
    return run_scenario(table2_scenario(), algorithms=PAPER_ALGORITHMS, seed=0)


@pytest.fixture(scope="module")
def table1() -> ExperimentResult:
    return run_scenario(table1_scenario(), algorithms=PAPER_ALGORITHMS, seed=0)


def test_regenerate_table2(benchmark, table2: ExperimentResult) -> None:
    scenario = table2_scenario()
    scores = scenario.functions["f1"](scenario.population)
    benchmark.pedantic(
        lambda: get_algorithm("unbalanced").run(
            scenario.population, scores, hist_spec=scenario.hist_spec
        ),
        rounds=3,
        iterations=1,
    )
    emd_table = format_comparison_table(
        table2,
        TABLE2_EMD,
        "unfairness",
        title="Table 2 — average EMD, 7300 workers: measured (paper)",
    )
    runtime_table = format_comparison_table(
        table2,
        TABLE2_RUNTIME,
        "runtime_seconds",
        title="Table 2 — runtime seconds: ours (paper's implementation)",
    )
    partitions_table = format_table(
        table2, "n_partitions", title="partitions found", precision=0
    )
    record_result("table2", "\n\n".join([emd_table, runtime_table, partitions_table]))


def test_single_attribute_functions_most_unfair(
    benchmark, table2: ExperimentResult
) -> None:
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for algorithm in PAPER_ALGORITHMS:
        mixture_max = max(table2.cell(algorithm, f).unfairness for f in MIXTURES)
        for function in SINGLE_ATTRIBUTE:
            assert table2.cell(algorithm, function).unfairness > mixture_max


def test_larger_dataset_less_sampling_noise(
    benchmark, table1: ExperimentResult, table2: ExperimentResult
) -> None:
    # Paper: Table 2's EMD values are uniformly below Table 1's (e.g. 0.163
    # vs 0.196 for balanced/f1) because cells are larger.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for algorithm in PAPER_ALGORITHMS:
        for function in MIXTURES + SINGLE_ATTRIBUTE:
            small = table1.cell(algorithm, function).unfairness
            large = table2.cell(algorithm, function).unfairness
            assert large < small, (algorithm, function)


def test_larger_dataset_costs_more_time(
    benchmark, table1: ExperimentResult, table2: ExperimentResult
) -> None:
    # Paper: "the larger the dataset, the more time it took for all
    # algorithms to finish."  Compare whole-table totals to smooth noise.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    total_small = sum(row.runtime_seconds for row in table1.rows)
    total_large = sum(row.runtime_seconds for row in table2.rows)
    assert total_large > total_small


def test_all_algorithms_behave_similarly(benchmark, table2: ExperimentResult) -> None:
    # Paper: "in the case of 7300 workers, all the algorithms behave
    # similarly" — every algorithm's EMD within 10% of the column's best.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for function in MIXTURES + SINGLE_ATTRIBUTE:
        values = [table2.cell(a, function).unfairness for a in PAPER_ALGORITHMS]
        assert min(values) >= 0.9 * max(values), function
