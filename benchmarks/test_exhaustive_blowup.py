"""Experiment E5 — why brute force is hopeless (paper, §Evaluation prose).

The paper: the exhaustive algorithm "failed to terminate after running for
two days with only 6 attributes ... even when each attribute had only a
maximum of 5 values."  This benchmark quantifies that claim two ways:

* analytically — the number of candidate split trees for the paper's six
  attribute cardinalities (2, 3, 5, 3, 4, 5) has hundreds of digits;
* empirically — measured exhaustive runtime grows explosively with the
  number of attributes, and the budget guard trips long before the paper's
  full setting.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import record_result
from repro.core.algorithms import count_split_trees, get_algorithm
from repro.core.attributes import CategoricalAttribute, ObservedAttribute
from repro.core.population import Population
from repro.core.schema import WorkerSchema
from repro.exceptions import BudgetExceededError

#: Cardinalities of the paper's six protected attributes (numeric ones
#: bucketised to 5 values, as in the paper's exhaustive run).
PAPER_CARDINALITIES = (2, 3, 5, 3, 4, 5)


def _population(n_attributes: int, n_workers: int = 40, seed: int = 0) -> Population:
    cards = PAPER_CARDINALITIES[:n_attributes]
    schema = WorkerSchema(
        protected=tuple(
            CategoricalAttribute(f"a{i}", tuple(f"v{j}" for j in range(card)))
            for i, card in enumerate(cards)
        ),
        observed=(ObservedAttribute("skill", 0.0, 1.0),),
    )
    rng = np.random.default_rng(seed)
    return Population(
        schema,
        {f"a{i}": rng.integers(0, card, n_workers) for i, card in enumerate(cards)},
        {"skill": rng.uniform(size=n_workers)},
    )


def test_analytic_search_space_explosion(benchmark) -> None:
    counts = benchmark.pedantic(
        lambda: [
            count_split_trees(PAPER_CARDINALITIES[:k])
            for k in range(1, len(PAPER_CARDINALITIES) + 1)
        ],
        rounds=3,
        iterations=1,
    )
    lines = ["candidate split trees vs number of attributes (analytic)"]
    for k, count in enumerate(counts, start=1):
        digits = len(str(count))
        shown = str(count) if digits <= 20 else f"~10^{digits - 1}"
        lines.append(f"  {k} attributes ({PAPER_CARDINALITIES[:k]}): {shown}")
    record_result("exhaustive_blowup_analytic", "\n".join(lines))
    # Strictly explosive growth; the paper's setting is astronomically large.
    assert all(b > a for a, b in zip(counts, counts[1:]))
    assert counts[-1] > 10**100


def test_empirical_runtime_growth(benchmark) -> None:
    def measure() -> list[tuple[int, float, int]]:
        rows = []
        for k in (1, 2, 3):
            population = _population(k)
            scores = population.observed_column("skill")
            start = time.perf_counter()
            result = get_algorithm("exhaustive", budget=500_000).run(population, scores)
            rows.append((k, time.perf_counter() - start, result.n_evaluations))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["measured exhaustive search cost vs number of attributes"]
    for k, seconds, evaluations in rows:
        lines.append(f"  {k} attributes: {seconds:8.3f}s  {evaluations} evaluations")
    record_result("exhaustive_blowup_empirical", "\n".join(lines))
    evaluations = [r[2] for r in rows]
    assert evaluations[2] > 50 * evaluations[1] > 50 * evaluations[0]


def test_budget_guard_trips_at_four_attributes(benchmark) -> None:
    # Four of the paper's attributes already blow a 30k-candidate budget
    # (the analytic count is ~10^7 before deduplication) — the
    # bounded-compute analogue of the paper's two-day timeout.
    population = _population(4)
    scores = population.observed_column("skill")

    def run() -> None:
        with pytest.raises(BudgetExceededError):
            get_algorithm("exhaustive", budget=30_000).run(population, scores)

    benchmark.pedantic(run, rounds=1, iterations=1)
