"""Ablation A2 — histogram bin count and distance metric.

The paper fixes EMD over "equal bins over the range of f" without giving a
bin count, and names alternative metrics as future work.  This ablation
answers two questions on the paper's data:

* how sensitive is the measured unfairness to the bin count?  (EMD in score
  units should be nearly bin-invariant once bins resolve the distribution;
  that stability justifies our default of 10);
* do the alternative metrics (KS, TV, JS, Hellinger) still recover the
  planted gender bias of f6 and rank it above the random f1?
"""

from __future__ import annotations

import pytest

from conftest import record_result
from repro.core.algorithms import get_algorithm
from repro.core.histogram import HistogramSpec
from repro.marketplace.biased import paper_biased_functions
from repro.marketplace.scoring import paper_functions
from repro.simulation.generator import generate_paper_population

METRICS = ("emd", "ks", "tv", "js", "hellinger")
BIN_COUNTS = (5, 10, 20, 50)


@pytest.fixture(scope="module")
def setup():
    population = generate_paper_population(500, seed=42)
    f1_scores = paper_functions()["f1"](population)
    f6_scores = paper_biased_functions()["f6"](population)
    return population, f1_scores, f6_scores


def test_bin_count_sensitivity(benchmark, setup) -> None:
    population, f1_scores, f6_scores = setup

    def sweep():
        rows = []
        for bins in BIN_COUNTS:
            spec = HistogramSpec(bins=bins)
            f6 = get_algorithm("balanced").run(population, f6_scores, hist_spec=spec)
            f1 = get_algorithm("balanced").run(population, f1_scores, hist_spec=spec)
            rows.append((bins, f6.unfairness, f1.unfairness))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "bin-count sensitivity (balanced, 500 workers)",
        f"{'bins':>5}  {'f6 (biased)':>12}  {'f1 (random)':>12}",
    ]
    for bins, f6_value, f1_value in rows:
        lines.append(f"{bins:>5}  {f6_value:>12.3f}  {f1_value:>12.3f}")
    record_result("ablation_bins", "\n".join(lines))

    f6_values = [r[1] for r in rows]
    # EMD in score units is stable across bin counts for the planted bias:
    # every bin choice stays within 5% of the 10-bin value.
    reference = f6_values[BIN_COUNTS.index(10)]
    for value in f6_values:
        assert value == pytest.approx(reference, rel=0.05)
    # And the biased function dominates the random one at every bin count.
    for __, f6_value, f1_value in rows:
        assert f6_value > 2 * f1_value


def test_alternative_metrics_recover_planted_bias(benchmark, setup) -> None:
    population, f1_scores, f6_scores = setup

    def sweep():
        rows = []
        for metric in METRICS:
            f6 = get_algorithm("balanced").run(population, f6_scores, metric=metric)
            f1 = get_algorithm("balanced").run(population, f1_scores, metric=metric)
            rows.append((metric, f6, f1))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "metric ablation (balanced, 500 workers)",
        f"{'metric':>10}  {'f6 value':>9}  {'f6 attrs':>28}  {'f1 value':>9}",
    ]
    for metric, f6, f1 in rows:
        lines.append(
            f"{metric:>10}  {f6.unfairness:>9.3f}"
            f"  {','.join(f6.partitioning.attributes_used()):>28}"
            f"  {f1.unfairness:>9.3f}"
        )
    record_result("ablation_metrics", "\n".join(lines))

    for metric, f6, f1 in rows:
        # Every metric finds the gender split for f6 (disjoint supports are
        # maximal under all of them) and ranks it far above random data.
        assert f6.partitioning.attributes_used() == ("gender",), metric
        assert f6.unfairness > f1.unfairness, metric
