"""Ablation A4 — how much does greediness cost? (beam-width sweep)

``balanced`` commits to one attribute per level; the beam-search extension
(`repro.core.algorithms.beam`) keeps the best ``w`` partitionings per level.
This ablation sweeps the beam width on the biased functions and on the toy
example, measuring what the greedy choice leaves on the table within the
balanced-tree space — and confirming that on these planted biases the greedy
is already near-optimal (the paper's heuristics are cheap *and* sufficient).
"""

from __future__ import annotations

import pytest

from conftest import record_result
from repro.core.algorithms import get_algorithm
from repro.simulation.config import PaperConfig
from repro.simulation.scenarios import table3_scenario

WIDTHS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def scenario():
    # 2000 workers keeps the sweep quick while preserving all Table 3 shapes.
    return table3_scenario(PaperConfig(n_workers=2000))


def test_beam_width_sweep(benchmark, scenario) -> None:
    population = scenario.population

    def sweep():
        rows = []
        for name, function in scenario.functions.items():
            scores = function(population)
            greedy = get_algorithm("balanced").run(
                population, scores, hist_spec=scenario.hist_spec
            )
            by_width = [
                get_algorithm("beam", beam_width=width).run(
                    population, scores, hist_spec=scenario.hist_spec
                )
                for width in WIDTHS
            ]
            rows.append((name, greedy, by_width))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "beam-width ablation (2000 workers, biased functions)",
        f"{'fn':>4}  {'greedy':>8}  " + "  ".join(f"w={w:<4}" for w in WIDTHS),
    ]
    for name, greedy, by_width in rows:
        lines.append(
            f"{name:>4}  {greedy.unfairness:>8.3f}  "
            + "  ".join(f"{r.unfairness:<6.3f}" for r in by_width)
        )
    record_result("ablation_beam", "\n".join(lines))

    for name, greedy, by_width in rows:
        values = [r.unfairness for r in by_width]
        # Wider beams never lose (monotone within tolerance) ...
        for narrow, wide in zip(values, values[1:]):
            assert wide >= narrow - 1e-9, name
        # ... and never fall below the greedy.
        assert values[-1] >= greedy.unfairness - 1e-9, name
        # On these planted biases the greedy is already near the best
        # balanced tree an 8-wide beam can find (within 5%).
        assert greedy.unfairness >= 0.95 * values[-1], name
