"""Extension E6 — the future-work experiment the paper could not run.

The paper's immediate future work is to test the algorithms "on real
datasets from Qapa and TaskRabbit".  That data is proprietary; this
benchmark substitutes a realistic *correlated* population
(:mod:`repro.simulation.realistic`) and runs the experiment the paper
describes: audit the facially neutral scoring functions on data where
language correlates with country and test scores with language.

Asserted shapes:

* the audit pinpoints the language channel for f4 (LanguageTest-only);
* the measured unfairness is statistically significant (unlike the uniform
  simulation's, which the significance ablation shows to be noise);
* the signal strength grows monotonically with the planted correlation
  strength.
"""

from __future__ import annotations

import pytest

from conftest import record_result
from repro.analysis.significance import permutation_test
from repro.core.algorithms import get_algorithm
from repro.core.partition import Partition, Partitioning
from repro.core.splitting import split_partition
from repro.marketplace.scoring import paper_functions
from repro.simulation.realistic import generate_realistic_population

STRENGTHS = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_realistic_audit_finds_language_channel(benchmark) -> None:
    population = generate_realistic_population(3000, seed=0, bias_strength=1.0)
    scores = paper_functions()["f4"](population)

    result = benchmark.pedantic(
        lambda: get_algorithm("balanced").run(population, scores),
        rounds=3,
        iterations=1,
    )
    assert "language" in result.partitioning.attributes_used()
    test = permutation_test(scores, result.partitioning, n_permutations=199, rng=0)
    assert test.significant
    assert test.excess > 0.1

    record_result(
        "extension_realistic",
        "realistic-population audit of f4 (LanguageTest only)\n"
        f"  groups: {result.partitioning.k} on "
        f"{result.partitioning.attributes_used()}\n"
        f"  unfairness: {result.unfairness:.3f}\n"
        f"  permutation test: {test}",
    )


def test_signal_grows_with_correlation_strength(benchmark) -> None:
    def sweep():
        rows = []
        for strength in STRENGTHS:
            population = generate_realistic_population(
                3000, seed=3, bias_strength=strength
            )
            scores = paper_functions()["f4"](population)
            by_language = Partitioning(
                split_partition(
                    population, Partition(population.all_indices()), "language"
                ),
                population.size,
            )
            test = permutation_test(scores, by_language, n_permutations=99, rng=1)
            rows.append((strength, test))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "signal above noise vs planted correlation strength (f4, by language)",
        f"{'strength':>9}  {'observed':>9}  {'noise floor':>12}  {'excess':>7}  {'p':>7}",
    ]
    for strength, test in rows:
        lines.append(
            f"{strength:>9.2f}  {test.observed:>9.3f}"
            f"  {test.null_mean:>6.3f}±{test.null_std:.3f}"
            f"  {test.excess:>7.3f}  {test.p_value:>7.3f}"
        )
    record_result("extension_realistic_sweep", "\n".join(lines))

    excesses = [test.excess for __, test in rows]
    assert all(b > a for a, b in zip(excesses, excesses[1:]))
    assert rows[0][1].p_value > 0.05  # strength 0: pure noise
    assert rows[-1][1].p_value == pytest.approx(1 / 100)  # strength 1: maximal signal
