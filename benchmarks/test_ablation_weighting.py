"""Ablation A5 — uniform vs size-weighted average pairwise EMD.

The paper's Definition 2 weights every pair of partitions equally, so on
deep partitionings the objective is dominated by pairs of tiny cells —
which is exactly the sampling noise Tables 1–2 measure.  The size-weighted
variant (pair {i, j} weighted by |p_i|·|p_j|) is one of the "other
formulations" the paper's future work names.  This ablation compares the two
on the biased and the random functions:

* both objectives recover the planted gender bias of f6 at the pinned 0.8;
* on the random f1, the *value* each objective assigns to the full
  partitioning differs (size-weighting damps tiny-pair noise), while the
  structures found remain full partitionings either way — the noise is
  uniform across cells, so no weighting can conjure signal out of it.
"""

from __future__ import annotations

import pytest

from conftest import record_result
from repro.core.algorithms import get_algorithm
from repro.marketplace.biased import paper_biased_functions
from repro.marketplace.scoring import paper_functions
from repro.simulation.generator import generate_paper_population

FUNCTIONS = ("f1", "f4", "f6", "f7", "f8")


@pytest.fixture(scope="module")
def population():
    return generate_paper_population(2000, seed=42)


def test_weighting_ablation(benchmark, population) -> None:
    functions = {**paper_functions(), **paper_biased_functions()}

    def sweep():
        rows = []
        for name in FUNCTIONS:
            scores = functions[name](population)
            uniform = get_algorithm("balanced").run(
                population, scores, weighting="uniform"
            )
            size = get_algorithm("balanced").run(population, scores, weighting="size")
            rows.append((name, uniform, size))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "objective-weighting ablation (balanced, 2000 workers)",
        f"{'fn':>4}  {'uniform':>8}  {'k':>5}  {'size-wtd':>9}  {'k':>5}",
    ]
    for name, uniform, size in rows:
        lines.append(
            f"{name:>4}  {uniform.unfairness:>8.3f}  {uniform.partitioning.k:>5d}"
            f"  {size.unfairness:>9.3f}  {size.partitioning.k:>5d}"
        )
    record_result("ablation_weighting", "\n".join(lines))

    by_name = {name: (u, s) for name, u, s in rows}
    # Both objectives pin the f6 gender split at ~0.8.
    for result in by_name["f6"]:
        assert result.partitioning.attributes_used() == ("gender",)
        assert result.unfairness == pytest.approx(0.8, abs=0.03)
    # Both find the f7 gender+country structure.
    for result in by_name["f7"]:
        assert result.partitioning.attributes_used() == ("country", "gender")
    # On random data the full partitioning mixes cell sizes, so the two
    # objectives assign genuinely different values (size-weighting damps the
    # tiny-pair noise); on f6's two near-equal gender groups they coincide.
    for name in ("f1", "f4"):
        uniform_result, size_result = by_name[name]
        assert uniform_result.unfairness - size_result.unfairness > 0.005, name
    uniform_f6, size_f6 = by_name["f6"]
    assert uniform_f6.unfairness == pytest.approx(size_f6.unfairness, abs=0.005)
