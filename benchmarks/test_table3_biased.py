"""Experiment E4 — Table 3: 7300 workers, biased-by-design functions f6..f9.

The qualitative study: the algorithms must *recover the planted bias*.
Asserted shapes (paper, §Qualitative Results):

* ``balanced`` partitions on exactly the attributes each function was
  designed to correlate with — gender for f6 (EMD ≈ 0.8), gender+country
  for f7, and (ethnicity, language, year of birth) for f9;
* the biased functions exhibit much higher unfairness than the random
  functions of Tables 1-2;
* the exact EMD of the gender split under f6 matches the paper's 0.800
  within noise, since that value is pinned by the construction of f6.

Note one intentional deviation recorded in EXPERIMENTS.md: the paper's
``unbalanced`` over-split on f6/f7 (EMD 0.040/0.164) due to the "local
nature of its stopping condition"; under our union reading of
``averageEMD(X, S, f)`` the local test is better calibrated and unbalanced
finds the gender split too.  The paper itself reports that across reruns
"in some cases, unbalanced performed as well as balanced".
"""

from __future__ import annotations

import pytest

from conftest import record_result
from repro.core.algorithms import PAPER_ALGORITHMS, get_algorithm
from repro.reporting.paper_reference import TABLE3_EMD
from repro.reporting.tables import format_comparison_table, format_table
from repro.simulation.runner import ExperimentResult, run_scenario
from repro.simulation.scenarios import table2_scenario, table3_scenario

BIASED = ("f6", "f7", "f8", "f9")


@pytest.fixture(scope="module")
def table3() -> ExperimentResult:
    return run_scenario(table3_scenario(), algorithms=PAPER_ALGORITHMS, seed=0)


def test_regenerate_table3(benchmark, table3: ExperimentResult) -> None:
    scenario = table3_scenario()
    scores = scenario.functions["f6"](scenario.population)
    benchmark.pedantic(
        lambda: get_algorithm("balanced").run(
            scenario.population, scores, hist_spec=scenario.hist_spec
        ),
        rounds=3,
        iterations=1,
    )
    emd_table = format_comparison_table(
        table3,
        TABLE3_EMD,
        "unfairness",
        title="Table 3 — average EMD, 7300 workers, biased functions: measured (paper)",
    )
    attributes_table = format_table(
        table3,
        lambda row: float(len(row.attributes_used)),
        title="number of attributes in the returned partitioning",
        precision=0,
    )
    record_result("table3", "\n\n".join([emd_table, attributes_table]))


def test_f6_balanced_finds_gender_only_at_08(
    benchmark, table3: ExperimentResult
) -> None:
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    row = table3.cell("balanced", "f6")
    assert row.attributes_used == ("gender",)
    assert row.n_partitions == 2
    # Pinned by construction: males U(0.8, 1), females U(0, 0.2) -> EMD 0.8.
    assert row.unfairness == pytest.approx(TABLE3_EMD["balanced"]["f6"], abs=0.02)


def test_f7_balanced_finds_gender_and_country(
    benchmark, table3: ExperimentResult
) -> None:
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    row = table3.cell("balanced", "f7")
    assert row.attributes_used == ("country", "gender")
    assert row.unfairness == pytest.approx(TABLE3_EMD["balanced"]["f7"], abs=0.05)


def test_f8_balanced_matches_paper_value(
    benchmark, table3: ExperimentResult
) -> None:
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    row = table3.cell("balanced", "f8")
    assert set(row.attributes_used) <= {"gender", "country"}
    assert row.unfairness == pytest.approx(TABLE3_EMD["balanced"]["f8"], abs=0.05)


def test_f9_finds_planted_attribute_triple(
    benchmark, table3: ExperimentResult
) -> None:
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    row = table3.cell("balanced", "f9")
    assert set(row.attributes_used) == {"ethnicity", "language", "year_of_birth"}


def test_biased_functions_exceed_random_functions(benchmark) -> None:
    # Paper: "overall for all functions and algorithms, the average EMD is
    # much higher compared to the functions used in our simulation".
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    random_result = run_scenario(
        table2_scenario(), algorithms=("balanced",), seed=0
    )
    biased_result = run_scenario(
        table3_scenario(), algorithms=("balanced",), seed=0
    )
    random_max = max(row.unfairness for row in random_result.rows)
    for function in ("f6", "f7", "f8"):
        assert biased_result.cell("balanced", function).unfairness > random_max


def test_heuristic_beats_blind_full_partitioning_on_f6(
    benchmark, table3: ExperimentResult
) -> None:
    # On f6, the informed gender split (EMD ~0.8) dominates the blind
    # all-attributes partitioning (paper: 0.800 vs 0.420).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert (
        table3.cell("balanced", "f6").unfairness
        > table3.cell("all-attributes", "f6").unfairness + 0.2
    )
