"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one paper artefact (table or figure),
prints the measured-vs-paper comparison, writes it to
``benchmarks/results/<name>.txt`` and asserts the *shape* of the result
(who wins, what grows, which attributes are found) — never the absolute
numbers, which depend on RNG draws and hardware (see DESIGN.md §5).
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def record_result(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
