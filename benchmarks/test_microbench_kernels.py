"""Kernel microbenchmarks — the hot paths that make the search fast.

Unlike the table benchmarks (which regenerate paper artefacts), these use
pytest-benchmark's statistical timing on the numeric kernels the algorithms
live on, to catch performance regressions:

* per-worker score digitisation (done once per audit),
* per-partition histogram via ``bincount`` over pre-digitised indices,
* the O(bins·k log k) average-pairwise-EMD fast path vs the O(k²·bins)
  dense matrix (the fast path is what makes the ``all-attributes``
  baseline's 1774-cell evaluation cheap),
* a full split of 7300 workers on one attribute.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.histogram import HistogramSpec
from repro.core.partition import Partition
from repro.core.splitting import split_partition
from repro.metrics.emd import average_pairwise_emd, pairwise_emd_matrix
from repro.simulation.generator import generate_paper_population

SPEC = HistogramSpec(bins=10)


@pytest.fixture(scope="module")
def population_7300():
    return generate_paper_population(7300, seed=42)


@pytest.fixture(scope="module")
def scores_7300(population_7300):
    return population_7300.observed_normalized("language_test")


def test_bin_indices_7300_workers(benchmark, scores_7300) -> None:
    result = benchmark(SPEC.bin_indices, scores_7300)
    assert result.shape == (7300,)


def test_partition_histogram_from_indices(benchmark, scores_7300) -> None:
    bin_idx = SPEC.bin_indices(scores_7300)
    member_rows = np.arange(0, 7300, 3)
    result = benchmark(
        SPEC.histogram_from_bin_indices, bin_idx[member_rows]
    )
    assert result.sum() == member_rows.shape[0]


def test_average_pairwise_fast_path_1800_histograms(benchmark) -> None:
    rng = np.random.default_rng(0)
    pmfs = rng.dirichlet(np.ones(10), size=1800)
    value = benchmark(average_pairwise_emd, pmfs, 0.1)
    assert value > 0.0


def test_dense_pairwise_matrix_300_histograms(benchmark) -> None:
    # The dense path is only used for reporting; keep it honest at small k.
    rng = np.random.default_rng(1)
    pmfs = rng.dirichlet(np.ones(10), size=300)
    matrix = benchmark(pairwise_emd_matrix, pmfs, 0.1)
    assert matrix.shape == (300, 300)


def test_fast_path_matches_dense_path(benchmark) -> None:
    rng = np.random.default_rng(2)
    pmfs = rng.dirichlet(np.ones(10), size=150)
    dense = pairwise_emd_matrix(pmfs, 0.1)
    expected = dense[np.triu_indices(150, 1)].mean()
    value = benchmark(average_pairwise_emd, pmfs, 0.1)
    assert value == pytest.approx(expected)


def test_split_7300_workers_on_country(benchmark, population_7300) -> None:
    root = Partition(population_7300.all_indices())
    children = benchmark(split_partition, population_7300, root, "country")
    assert sum(c.size for c in children) == 7300
