"""Kernel microbenchmarks — the hot paths that make the search fast.

Unlike the table benchmarks (which regenerate paper artefacts), these use
pytest-benchmark's statistical timing on the numeric kernels the algorithms
live on, to catch performance regressions:

* per-worker score digitisation (done once per audit),
* per-partition histogram via ``bincount`` over pre-digitised indices,
* the O(bins·k log k) average-pairwise-EMD fast path vs the O(k²·bins)
  dense matrix (the fast path is what makes the ``all-attributes``
  baseline's 1774-cell evaluation cheap),
* a full split of 7300 workers on one attribute.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import record_result

from repro.core.algorithms import get_algorithm
from repro.core.histogram import HistogramSpec
from repro.core.partition import Partition
from repro.core.splitting import split_partition
from repro.metrics.emd import average_pairwise_emd, pairwise_emd_matrix
from repro.simulation.generator import generate_paper_population

SPEC = HistogramSpec(bins=10)


@pytest.fixture(scope="module")
def population_7300():
    return generate_paper_population(7300, seed=42)


@pytest.fixture(scope="module")
def scores_7300(population_7300):
    return population_7300.observed_normalized("language_test")


def test_bin_indices_7300_workers(benchmark, scores_7300) -> None:
    result = benchmark(SPEC.bin_indices, scores_7300)
    assert result.shape == (7300,)


def test_partition_histogram_from_indices(benchmark, scores_7300) -> None:
    bin_idx = SPEC.bin_indices(scores_7300)
    member_rows = np.arange(0, 7300, 3)
    result = benchmark(
        SPEC.histogram_from_bin_indices, bin_idx[member_rows]
    )
    assert result.sum() == member_rows.shape[0]


def test_average_pairwise_fast_path_1800_histograms(benchmark) -> None:
    rng = np.random.default_rng(0)
    pmfs = rng.dirichlet(np.ones(10), size=1800)
    value = benchmark(average_pairwise_emd, pmfs, 0.1)
    assert value > 0.0


def test_dense_pairwise_matrix_300_histograms(benchmark) -> None:
    # The dense path is only used for reporting; keep it honest at small k.
    rng = np.random.default_rng(1)
    pmfs = rng.dirichlet(np.ones(10), size=300)
    matrix = benchmark(pairwise_emd_matrix, pmfs, 0.1)
    assert matrix.shape == (300, 300)


def test_fast_path_matches_dense_path(benchmark) -> None:
    rng = np.random.default_rng(2)
    pmfs = rng.dirichlet(np.ones(10), size=150)
    dense = pairwise_emd_matrix(pmfs, 0.1)
    expected = dense[np.triu_indices(150, 1)].mean()
    value = benchmark(average_pairwise_emd, pmfs, 0.1)
    assert value == pytest.approx(expected)


def test_split_7300_workers_on_country(benchmark, population_7300) -> None:
    root = Partition(population_7300.all_indices())
    children = benchmark(split_partition, population_7300, root, "country")
    assert sum(c.size for c in children) == 7300


def test_engine_full_vs_incremental_balanced_7300(
    population_7300, scores_7300
) -> None:
    """Acceptance microbenchmark for the evaluation engine.

    Runs ``balanced`` on the Table 2 workload (7300 workers, language-test
    scores) once with the engine's ``full`` mode — every objective query
    materialises the dense pairwise-distance matrix, the pre-engine cost
    model — and once with the default ``incremental`` mode (value cache +
    closed-form/vectorized kernels).  The engine counters give the exact
    number of individual pairwise distances each mode materialised; the
    issue requires the full mode to compute at least 3x more.
    """
    full = get_algorithm("balanced").run(
        population_7300, scores_7300, engine_mode="full"
    )
    incremental = get_algorithm("balanced").run(population_7300, scores_7300)

    # Same objective either way — the modes differ only in bookkeeping.
    assert incremental.unfairness == pytest.approx(full.unfairness, abs=1e-12)

    ratio = full.pair_distances_computed / max(incremental.pair_distances_computed, 1)
    assert ratio >= 3.0

    record_result(
        "engine_full_vs_incremental",
        "\n".join(
            [
                "Evaluation engine: full recomputation vs incremental "
                "(balanced, 7300 workers, language_test)",
                f"  full mode        : {full.pair_distances_computed:>12,} "
                f"pair distances materialised in {full.runtime_seconds:.3f}s",
                f"  incremental mode : {incremental.pair_distances_computed:>12,} "
                f"pair distances materialised in {incremental.runtime_seconds:.3f}s "
                f"(cache_hits={incremental.cache_hits})",
                f"  naive dense cost : {full.pair_distances_full:>12,} "
                "pair distances (sum of C(k,2) over all objective queries)",
                f"  reduction        : {ratio:,.1f}x fewer pair distances",
            ]
        ),
    )
