"""Platform governance: audit a whole workload, fix the worst offender.

The paper closes with: "it is up to the user, requester or platform
developer, to decide on the right subsequent action."  This example plays
the platform developer:

1. run a realistic day of tasks (mixed neutral and biased requesters) under
   per-worker capacity and observe who gets the work;
2. audit the *whole workload* to find the systematic bias channels;
3. repair the worst offender's scores and replay the day, measuring both
   the fairness gain and the requester-utility cost.

Run:  python examples/platform_governance.py
"""

from __future__ import annotations

from repro import (
    Task,
    audit_workload,
    generate_paper_population,
    get_algorithm,
    paper_biased_functions,
    repair_scores,
    task_from_weights,
)
from repro.marketplace.assignment import assign_tasks


def main() -> None:
    population = generate_paper_population(1500, seed=21)
    biased = paper_biased_functions()

    # A day's workload: three neutral requesters, two biased ones.
    tasks = [
        task_from_weights("html-help", "help with HTML/CSS", {"language_test": 0.7, "approval_rate": 0.3}, positions=8),
        task_from_weights("data-entry", "data entry", {"approval_rate": 1.0}, positions=8),
        task_from_weights("survey", "take a survey", {"language_test": 0.5, "approval_rate": 0.5}, positions=8),
        Task("writing-gig", "writing micro-gig", biased["f6"], positions=8),
        Task("translation", "translation job", biased["f7"], positions=8),
    ]

    # 1. Run the day with capacity 1 (each worker takes one gig).
    plan = assign_tasks(population, tasks, capacity=1)
    print("work share by gender before intervention:")
    for group, share in plan.load_share_by_group(population, "gender").items():
        print(f"  {group:8s} {share:5.1%}")
    print(f"total requester utility: {plan.total_utility:.2f}\n")

    # 2. Audit the workload: which channels recur?
    summary = audit_workload(population, tasks, algorithm="balanced")
    print(summary.render())
    worst = summary.worst_task()
    print(f"\nintervening on task {worst.task_id!r} "
          f"(unfairness {worst.unfairness:.3f} on {worst.attributes_used})\n")

    # 3. Repair that task's scores and replay the day.
    worst_task = next(task for task in tasks if task.task_id == worst.task_id)
    scores = worst_task.scoring(population)
    audit = get_algorithm("balanced").run(population, scores)
    repaired = repair_scores(scores, audit.partitioning, amount=1.0)
    replayed = assign_tasks(
        population, tasks, capacity=1, scores_override={worst.task_id: repaired}
    )
    print("work share by gender after repairing the worst task:")
    for group, share in replayed.load_share_by_group(population, "gender").items():
        print(f"  {group:8s} {share:5.1%}")
    utility_cost = plan.total_utility - replayed.total_utility
    print(
        f"total requester utility: {replayed.total_utility:.2f} "
        f"(cost of the intervention: {utility_cost:+.2f})"
    )


if __name__ == "__main__":
    main()
