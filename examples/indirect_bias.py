"""Indirect discrimination on a realistic (correlated) marketplace.

The paper's simulation draws every attribute independently at random, so
the unfairness it measures on f1..f5 is sampling noise.  Real marketplaces
are not like that: language correlates with country, test scores with
language, approval rates with tenure.  This example audits the *facially
neutral* f4 (LanguageTest only) on such a population and shows:

1. the audit pinpoints the language/country channel the bias flows through;
2. a permutation test separates this real signal from the noise the same
   audit reports on the paper's uniform data;
3. quantile repair on the discovered grouping closes the gap.

Run:  python examples/indirect_bias.py
"""

from __future__ import annotations

from repro import (
    FairnessAuditor,
    UnfairnessEvaluator,
    generate_paper_population,
    paper_functions,
    permutation_test,
    repair_scores,
)
from repro.simulation.realistic import generate_realistic_population


def main() -> None:
    scoring = paper_functions()["f4"]  # LanguageTest only — facially neutral

    realistic = generate_realistic_population(3000, seed=0, bias_strength=1.0)
    uniform = generate_paper_population(3000, seed=0)

    # 1. Audit both populations with the same function.
    for name, population in (("realistic", realistic), ("uniform", uniform)):
        report = FairnessAuditor(population).audit(scoring, algorithm="balanced")
        partitioning = report.result.partitioning
        test = permutation_test(
            report.scores, partitioning, n_permutations=199, rng=0
        )
        print(f"--- {name} population ---")
        print(
            f"unfairness {report.unfairness:.3f} over {partitioning.k} groups "
            f"on {partitioning.attributes_used()}"
        )
        print(f"permutation test: {test}")
        print(
            "verdict:",
            "real bias" if test.excess > 5 * test.null_std else "sampling noise",
        )
        print()

    # 2. Where does the bias flow? The most separated pair names the channel.
    report = FairnessAuditor(realistic).audit(scoring, algorithm="balanced")
    group_a, group_b, distance = report.most_separated_pair()
    print(f"most separated pair on the realistic data (EMD {distance:.3f}):")
    print(f"  {group_a}")
    print(f"  {group_b}")

    # 3. Repair the discovered grouping and re-measure.
    repaired = repair_scores(report.scores, report.result.partitioning, amount=1.0)
    after = UnfairnessEvaluator(realistic, repaired).unfairness(
        report.result.partitioning
    )
    print(
        f"\nafter quantile repair on the audited groups: "
        f"{report.unfairness:.3f} -> {after:.3f}"
    )


if __name__ == "__main__":
    main()
