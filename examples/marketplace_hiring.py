"""A biased marketplace, observed and explained.

Simulates the demand side of an online job marketplace: requesters post
tasks, workers are ranked, the top-ranked get hired.  With a scoring
function that is biased by design (the paper's f7: gender x country), the
hiring statistics skew visibly — and the fairness audit explains *which*
demographic subgroups the ranking separates, something per-attribute hiring
shares alone cannot reveal.

Run:  python examples/marketplace_hiring.py
"""

from __future__ import annotations

from repro import (
    FairnessAuditor,
    Marketplace,
    Task,
    generate_paper_population,
    paper_biased_functions,
)
from repro.marketplace.exposure import exposure_disparity, group_exposure
from repro.marketplace.ranking import rank_workers


def main() -> None:
    population = generate_paper_population(1000, seed=11)
    marketplace = Marketplace(population)
    scoring = paper_biased_functions()["f7"]

    # A stream of 20 tasks, each hiring the 10 best-ranked workers.
    tasks = [
        Task(task_id=f"gig-{i}", title="help with HTML/CSS/JQuery", scoring=scoring, positions=10)
        for i in range(20)
    ]
    marketplace.run(tasks)

    print("hire share vs population share, by gender:")
    hire_share = marketplace.hire_share_by_group("gender")
    pop_share = marketplace.population_share("gender")
    for group in hire_share:
        print(
            f"  {group:8s} hires {hire_share[group]:5.1%}   population {pop_share[group]:5.1%}"
        )

    print("\nhire share vs population share, by country:")
    hire_share = marketplace.hire_share_by_group("country")
    pop_share = marketplace.population_share("country")
    for group in hire_share:
        print(
            f"  {group:8s} hires {hire_share[group]:5.1%}   population {pop_share[group]:5.1%}"
        )

    # Exposure view (Singh & Joachims style): who is seen at the top?
    ranking = rank_workers(population, scoring)
    print("\nmean exposure by gender:", group_exposure(ranking, population, "gender"))
    print(
        "exposure disparity (min/max, 1.0 = parity): "
        f"gender {exposure_disparity(ranking, population, 'gender'):.2f}, "
        f"country {exposure_disparity(ranking, population, 'country'):.2f}"
    )

    # Neither per-attribute view shows the interaction.  The audit does:
    print("\n=== fairness audit (balanced) ===")
    report = FairnessAuditor(population).audit(scoring, algorithm="balanced")
    print(report.render())


if __name__ == "__main__":
    main()
