"""Quickstart: audit a scoring function for subgroup unfairness.

Generates a synthetic crowdsourcing population under the paper's schema
(six protected attributes, two skill attributes), scores everyone with the
paper's f4 (LanguageTest only), and asks: which combination of protected
attributes does this function treat most unequally?

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import FairnessAuditor, generate_paper_population, paper_functions


def main() -> None:
    # 1. A population of 500 active workers (the paper's small setting).
    population = generate_paper_population(500, seed=42)
    print(f"population: {population}\n")

    # 2. The requester's scoring function: f4 = the language test alone.
    scoring = paper_functions()["f4"]
    print(f"scoring function: {scoring.name}, weights = {scoring.weights}\n")

    # 3. Find the most unfair partitioning with the paper's two heuristics.
    auditor = FairnessAuditor(population)
    for algorithm in ("balanced", "unbalanced"):
        report = auditor.audit(scoring, algorithm=algorithm)
        print(f"--- {algorithm} ---")
        print(
            f"unfairness (avg pairwise EMD): {report.unfairness:.3f} over "
            f"{len(report.groups)} groups, using attributes "
            f"{report.result.partitioning.attributes_used()}"
        )
        worst_a, worst_b, distance = report.most_separated_pair()
        print(f"most separated pair (EMD {distance:.3f}):")
        print(f"  {worst_a}")
        print(f"  {worst_b}\n")

    # 4. Which single attribute separates scores most? (the transparent
    #    decision-tree view of the algorithms' first split)
    from repro import attribute_importance

    print("--- single-attribute importance for f4 ---")
    scores = scoring(population)
    for entry in attribute_importance(population, scores):
        print(f"  {entry}")
    print()

    # 5. On purely random data the differences are sampling noise; compare
    #    with a function that is biased by design to see a real signal.
    from repro import paper_biased_functions

    report = auditor.audit(paper_biased_functions()["f6"], algorithm="balanced")
    print("--- balanced on the gender-biased f6 ---")
    print(report.render())


if __name__ == "__main__":
    main()
