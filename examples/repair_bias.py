"""Repairing the bias an audit found (the paper's future-work direction).

Audits the gender-biased f6, then applies quantile-alignment repair to the
scores at increasing strengths and re-measures unfairness — tracing the
fairness/utility frontier.  A full repair drives the average pairwise EMD
between the audited groups to ~0 while preserving each group's internal
ranking of workers.

Run:  python examples/repair_bias.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FairnessAuditor,
    UnfairnessEvaluator,
    generate_paper_population,
    paper_biased_functions,
    repair_scores,
)
from repro.repair.quantile import repaired_unfairness_curve


def main() -> None:
    population = generate_paper_population(2000, seed=5)
    scoring = paper_biased_functions()["f6"]
    scores = scoring(population)

    # 1. Audit: find the most unfair partitioning.
    auditor = FairnessAuditor(population)
    report = auditor.audit(scores, algorithm="balanced")
    partitioning = report.result.partitioning
    print(
        f"audit: unfairness {report.unfairness:.3f} across "
        f"{partitioning.k} groups on {partitioning.attributes_used()}"
    )

    # 2. The repair frontier: unfairness as a function of repair strength.
    def evaluate(repaired: np.ndarray) -> float:
        return UnfairnessEvaluator(population, repaired).unfairness(partitioning)

    print("\nrepair amount -> unfairness (avg pairwise EMD):")
    for amount, value in repaired_unfairness_curve(scores, partitioning, evaluate):
        distortion = float(np.abs(repair_scores(scores, partitioning, amount) - scores).mean())
        print(f"  {amount:>4.1f} -> {value:6.3f}   (mean score change {distortion:.3f})")

    # 3. Full repair, re-audited from scratch: the searcher should no longer
    #    find a strongly separated partitioning anywhere.
    repaired = repair_scores(scores, partitioning, amount=1.0)
    re_report = auditor.audit(repaired, algorithm="balanced")
    re_partitioning = re_report.result.partitioning
    print(
        f"\nre-audit after full repair: unfairness {re_report.unfairness:.3f} "
        f"(was {report.unfairness:.3f}), now spread over {re_partitioning.k} "
        f"tiny groups on {re_partitioning.attributes_used()}"
    )
    print(
        "  (the residual is small-sample noise: f6's repaired scores are "
        "bimodal, so random small subgroups differ by chance — no single "
        "attribute separates them the way gender did before the repair)"
    )
    gender_emd = UnfairnessEvaluator(population, repaired).unfairness(partitioning)
    print(f"  EMD between the original male/female groups is now {gender_emd:.4f}")

    # 4. Rankings within each group are untouched by the repair.
    males = partitioning.partitions[0].indices
    assert (np.argsort(scores[males]) == np.argsort(repaired[males])).all()
    print("within-group worker rankings preserved by the repair.")


if __name__ == "__main__":
    main()
