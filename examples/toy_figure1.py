"""The paper's Figure 1 toy example, end to end.

Builds the 12-worker Gender x Language population whose optimum partitioning
is the unbalanced tree {Male-English, Male-Indian, Male-Other, Female},
verifies that exhaustive search finds exactly that structure, and shows that
the ``unbalanced`` heuristic recovers it while ``balanced`` structurally
cannot (it must split every partition on the same attribute).

Run:  python examples/toy_figure1.py
"""

from __future__ import annotations

from repro import (
    build_split_tree,
    get_algorithm,
    render_split_tree,
    toy_population,
)


def main() -> None:
    population = toy_population()
    scores = population.observed_column("qualification")

    print("workers:")
    for worker in population:
        print(f"  {worker}")
    print()

    for algorithm in ("exhaustive", "unbalanced", "balanced", "all-attributes"):
        result = get_algorithm(algorithm).run(population, scores)
        print(f"=== {algorithm} ===")
        print(f"average pairwise EMD: {result.unfairness:.3f}")
        print(render_split_tree(build_split_tree(result.partitioning), population.schema))
        print()

    optimum = get_algorithm("exhaustive").run(population, scores)
    heuristic = get_algorithm("unbalanced").run(population, scores)
    assert optimum.partitioning.canonical_key() == heuristic.partitioning.canonical_key()
    print(
        "unbalanced recovered the exhaustive optimum exactly "
        f"(EMD {heuristic.unfairness:.3f}) — the Figure 1 partitioning."
    )


if __name__ == "__main__":
    main()
